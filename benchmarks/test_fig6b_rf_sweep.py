"""Paper Fig. 6(b): fps vs number of reference frames (32×32 SA, 1080p).

Paper-reported shape:

- fps decays roughly hyperbolically with the RF count (ME ∝ RFs, the other
  modules constant);
- real-time on all CPU+GPU systems with multiple RFs — up to 4 RFs on
  SysHK, "outperforming the execution on both SysNFF and SysNF".
"""

import pytest

from conftest import FIG6_CONFIGS, encode_fps
from repro.report import format_table

RF_COUNTS = tuple(range(1, 9))


@pytest.fixture(scope="module")
def fig6b_data():
    return {
        name: {rf: encode_fps(name, num_refs=rf, n_frames=rf + 12) for rf in RF_COUNTS}
        for name in FIG6_CONFIGS
    }


def test_fig6b_table(fig6b_data, emit, benchmark):
    benchmark.pedantic(
        encode_fps, args=("SysHK",), kwargs={"num_refs": 4}, rounds=2, iterations=1
    )
    rows = [
        [name] + [f"{fig6b_data[name][rf]:.1f}" for rf in RF_COUNTS]
        for name in FIG6_CONFIGS
    ]
    emit(
        "fig6b_rf_sweep",
        format_table(
            ["config"] + [f"{rf}RF" for rf in RF_COUNTS],
            rows,
            title="Fig 6(b): fps vs number of RFs, 32x32 SA, 1080p "
            "(paper: real-time up to 4 RFs on SysHK)",
        ),
    )


def test_fps_monotone_in_refs(fig6b_data, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for name in FIG6_CONFIGS:
        series = [fig6b_data[name][rf] for rf in RF_COUNTS]
        assert series == sorted(series, reverse=True)


def test_realtime_up_to_4rf_on_syshk(fig6b_data, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for rf in (1, 2, 3, 4):
        assert fig6b_data["SysHK"][rf] >= 25.0, f"SysHK should be real-time at {rf} RF"
    assert fig6b_data["SysHK"][5] < 25.0  # Fig. 7(b): the 5-RF curve is above 40 ms


def test_syshk_outperforms_other_systems(fig6b_data, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for rf in RF_COUNTS:
        assert fig6b_data["SysHK"][rf] > fig6b_data["SysNFF"][rf]
        assert fig6b_data["SysNFF"][rf] > fig6b_data["SysNF"][rf]


def test_hyperbolic_decay(fig6b_data, benchmark):
    """time/frame ≈ a + b·RF: the per-RF increment must be near-constant."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    import numpy as np

    for name in FIG6_CONFIGS:
        times = np.array([1.0 / fig6b_data[name][rf] for rf in RF_COUNTS])
        increments = np.diff(times)
        assert increments.min() > 0
        assert increments.max() / increments.min() < 1.8
