"""Ablation: Performance-Characterization smoothing (EWMA α) under noise.

The paper updates its characterization from the last frame (α = 1), which
gives one-frame recovery after load spikes but makes the LP chase
measurement noise. This bench quantifies the trade-off: per-frame time
jitter and mean throughput as functions of α on a platform with noisy
measurements, plus recovery latency after a genuine load change.
"""

import statistics

import pytest

from conftest import save_result
from repro.codec.config import CodecConfig
from repro.core.config import FrameworkConfig
from repro.core.framework import FevesFramework
from repro.hw.noise import (
    GaussianJitter,
    NoiseModel,
    PerturbationEvent,
    PerturbationSchedule,
)
from repro.hw.presets import get_platform
from repro.report import format_table

CFG = CodecConfig(width=1920, height=1088, search_range=16, num_ref_frames=1)
ALPHAS = (1.0, 0.6, 0.3)


def run(alpha: float, jitter: float, events: list | None = None, n: int = 60):
    noise = NoiseModel(
        schedule=PerturbationSchedule(events or []),
        jitter=GaussianJitter(sigma=jitter, seed=11),
    )
    fw = FevesFramework(
        get_platform("SysHK"), CFG,
        FrameworkConfig(noise=noise, ewma_alpha=alpha, lb_cache_rtol=0.0),
    )
    fw.run_model(n)
    return fw


@pytest.fixture(scope="module")
def sweep():
    out = {}
    for alpha in ALPHAS:
        fw = run(alpha, jitter=0.10)
        times = fw.trace.frame_times_s[5:]
        out[alpha] = {
            "mean_ms": statistics.mean(times) * 1e3,
            "cv": statistics.pstdev(times) / statistics.mean(times),
        }
    return out


def test_ewma_table(sweep, emit, benchmark):
    benchmark.pedantic(run, args=(1.0, 0.1, None, 15), rounds=2, iterations=1)
    rows = [
        [f"{a}", f"{v['mean_ms']:.2f}", f"{v['cv']:.1%}"]
        for a, v in sweep.items()
    ]
    emit(
        "ablation_ewma",
        format_table(
            ["alpha", "mean ms/frame", "frame-time CV"],
            rows,
            title="Ablation: characterization smoothing under 10% "
            "measurement jitter (SysHK)",
        ),
    )


def test_all_alphas_functional(sweep, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for a, v in sweep.items():
        assert v["mean_ms"] < 20.0  # none degrades throughput badly


def test_recovery_speed_tradeoff(benchmark):
    """α=1 recovers from a sustained load change faster than α=0.3."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    events = [PerturbationEvent(frame=20, device="CPU_H", factor=2.5,
                                duration=100)]

    def settle_frames(alpha: float) -> int:
        fw = run(alpha, jitter=0.0, events=events)
        times = fw.trace.frame_times_s
        final = statistics.mean(times[-10:])
        for i in range(20, len(times)):
            if all(abs(t - final) < 0.03 * final for t in times[i:]):
                return i - 19  # frames after the event until settled
        return 999

    fast = settle_frames(1.0)
    slow = settle_frames(0.3)
    assert fast <= 3          # the paper's single-frame-ish recovery
    assert slow >= fast       # smoothing can only delay adaptation
