"""Slice experiment: should the paper have parallelized R*?

FEVES maps the whole R* block (MC+TQ+TQ⁻¹+DBL) to one device because DBL's
neighbour dependencies prevent splitting it. H.264 slices remove those
dependencies (at a compression cost). This bench runs the counterfactual:

1. throughput of slice-parallel R* vs single-device R* on each system;
2. the bitrate cost of the slice restrictions (real compute, small frames).

Findings (asserted): parallelizing R* only pays when no single device
dominates (SysNFF's identical GPUs); with a dominant accelerator (SysHK)
the extra transfers and the slowest-slice straggler make it a loss — and
either way the gain is bounded by R*'s ~10 % share. The paper's
single-device choice is sound for its platforms.
"""

import pytest

from conftest import save_result
from repro.codec.config import CodecConfig
from repro.core.config import FrameworkConfig
from repro.core.framework import FevesFramework
from repro.hw.presets import get_platform
from repro.report import format_table

BASE = dict(width=1920, height=1088, search_range=16, num_ref_frames=1)


def fps(platform: str, parallel_rstar: bool) -> float:
    if parallel_rstar:
        cfg = CodecConfig(**BASE, num_slices=4, deblock_across_slices=False)
        fw_cfg = FrameworkConfig(rstar_parallel=True)
    else:
        cfg = CodecConfig(**BASE)
        fw_cfg = FrameworkConfig()
    fw = FevesFramework(get_platform(platform), cfg, fw_cfg)
    fw.run_model(12)
    return fw.steady_state_fps()


@pytest.fixture(scope="module")
def throughput():
    return {
        plat: {
            "single": fps(plat, False),
            "sliced": fps(plat, True),
        }
        for plat in ("SysNF", "SysNFF", "SysHK")
    }


@pytest.fixture(scope="module")
def rate_cost():
    from repro.codec.encoder import ReferenceEncoder
    from repro.video.generator import SyntheticSequence

    clip = SyntheticSequence(width=128, height=96, seed=3,
                             noise_sigma=1.5).frames(5)
    bits = {}
    for n, across in ((1, True), (4, False)):
        cfg = CodecConfig(width=128, height=96, search_range=8,
                          num_slices=n, deblock_across_slices=across)
        out = ReferenceEncoder(cfg).encode_sequence(clip)
        bits[n] = sum(f.bits for f in out)
    return bits


def test_slice_table(throughput, rate_cost, emit, benchmark):
    benchmark.pedantic(fps, args=("SysNFF", True), rounds=2, iterations=1)
    rows = [
        [plat, f"{v['single']:.1f}", f"{v['sliced']:.1f}",
         f"{v['sliced'] / v['single'] - 1:+.1%}"]
        for plat, v in throughput.items()
    ]
    overhead = rate_cost[4] / rate_cost[1] - 1
    rows.append(["bitstream cost (4 slices)", "-", "-", f"{overhead:+.1%}"])
    emit(
        "ablation_slice_rstar",
        format_table(
            ["platform", "single-device R* fps", "slice-parallel R* fps",
             "delta"],
            rows,
            title="Counterfactual: slice-parallel R* (4 slices, "
            "no cross-slice DBL) vs the paper's single-device mapping",
        ),
    )


def test_parallel_rstar_helps_balanced_systems(throughput, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert throughput["SysNFF"]["sliced"] > throughput["SysNFF"]["single"]


def test_parallel_rstar_hurts_dominant_gpu(throughput, benchmark):
    """With one fast GPU the slowest slice + extra transfers lose."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert throughput["SysHK"]["sliced"] <= throughput["SysHK"]["single"]


def test_gain_bounded_by_rstar_share(throughput, benchmark):
    """R* is ~10 % of the loop: no configuration gains more than that."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for plat, v in throughput.items():
        assert v["sliced"] < 1.12 * v["single"], plat


def test_slices_cost_bits_but_modestly(rate_cost, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert rate_cost[4] > rate_cost[1]
    assert rate_cost[4] < 1.15 * rate_cost[1]
