"""Fleet smoke: sweep fleet size x arrival rate, gate vs BENCH_FLEET.json.

Serves the same mixed-class workload through growing fleets (1, 2 and 4
nodes cycling SysHK/SysNF/SysNFF) at two arrival regimes (one burst, one
Poisson trickle) and records, per point: aggregate and per-class tails,
deadline-miss rate, global queue wait, peak concurrency, reroutes and
the shared per-platform LP-cache hit rate. Results land in the usual
``benchmarks/results`` pair *and* as the committed root-level
``BENCH_FLEET.json`` snapshot that CI uploads.

The regression gate is machine-normalized, following ``perf_smoke.py``:
every gated metric is *simulated* (frame counts, stream outcomes, p99
milliseconds of simulated latency — all deterministic, so they must
match the snapshot exactly) or a host-independent ratio (LP-cache hit
rate, allowed to drift 25% down). Host wall time is recorded for
context but never gated.
"""

import json
from pathlib import Path

import pytest

from conftest import RESULTS_DIR
from repro.cluster import Cluster, ClusterConfig, NodeSpec
from repro.report import format_table
from repro.service import build_workload

REPO_ROOT = Path(__file__).resolve().parent.parent
SNAPSHOT = REPO_ROOT / "BENCH_FLEET.json"

PLATFORM_CYCLE = ("SysHK", "SysNF", "SysNFF")
FLEET_SIZES = (1, 2, 4)
ARRIVAL_RATES = (0.0, 20.0)     # burst vs Poisson trickle
N_STREAMS = 8
N_FRAMES = 4
REGRESSION_TOL = 0.25

#: Metrics that are pure simulated state: bit-deterministic, gated exact.
DETERMINISTIC = (
    "frames_encoded", "streams_done", "p99_ms", "deadline_miss_rate",
    "peak_concurrent", "reroutes",
)


def fleet_point(n_nodes: int, arrival_rate: float) -> dict:
    import time

    wl = build_workload(
        N_STREAMS, n_frames=N_FRAMES, mix="broadcast",
        arrival_rate=arrival_rate, seed=7,
    )
    cluster = Cluster(ClusterConfig(
        nodes=tuple(
            NodeSpec(f"n{i}", platform=PLATFORM_CYCLE[i % len(PLATFORM_CYCLE)],
                     headroom=2.0)
            for i in range(n_nodes)
        ),
        policy="slack",
    ))
    t0 = time.perf_counter()
    m = cluster.run(wl)
    wall_s = time.perf_counter() - t0
    hit_rates = [c["hit_rate"] for c in m.lp_cache.values()]
    return {
        "nodes": n_nodes,
        "arrival_rate": arrival_rate,
        "frames_encoded": m.frames_encoded,
        "streams_done": m.streams.get("done", 0),
        "p50_ms": round(m.p50_ms, 3),
        "p99_ms": round(m.p99_ms, 3),
        "deadline_miss_rate": round(m.deadline_miss_rate, 4),
        "class_miss_rates": {
            name: round(c["deadline_miss_rate"], 4)
            for name, c in m.classes.items()
        },
        "queue_wait_p95_s": round(m.queue_wait_p95_s, 4),
        "duration_s": round(m.duration_s, 4),
        "peak_concurrent": m.peak_concurrent,
        "reroutes": m.reroutes,
        "lp_cache_hit_rate": round(
            sum(hit_rates) / len(hit_rates), 4
        ) if hit_rates else 0.0,
        "wall_s": round(wall_s, 3),
    }


@pytest.fixture(scope="module")
def committed():
    """The snapshot as committed, captured before any test rewrites it."""
    if not SNAPSHOT.exists():
        return None
    return json.loads(SNAPSHOT.read_text())


@pytest.fixture(scope="module")
def sweep(committed):
    return [
        fleet_point(n, rate)
        for rate in ARRIVAL_RATES
        for n in FLEET_SIZES
    ]


def test_fleet_table_and_snapshot(sweep, emit):
    rows = [
        [
            p["nodes"],
            f"{p['arrival_rate']:g}",
            p["frames_encoded"],
            p["streams_done"],
            f"{p['p99_ms']:.1f}",
            f"{100 * p['deadline_miss_rate']:.0f}%",
            f"{p['queue_wait_p95_s'] * 1e3:.1f}",
            p["peak_concurrent"],
        ]
        for p in sweep
    ]
    table = format_table(
        ["nodes", "arr/s", "frames", "done", "p99 ms", "miss",
         "qwait ms", "peak"],
        rows,
        title=f"fleet sweep — {N_STREAMS} broadcast streams x {N_FRAMES} frames",
    )
    emit("fleet_sweep", table)
    blob = {
        "benchmark": "fleet sweep (size x arrival rate, slack routing)",
        "platforms": list(PLATFORM_CYCLE),
        "streams": N_STREAMS,
        "frames_per_stream": N_FRAMES,
        "points": sweep,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "fleet_sweep.json").write_text(
        json.dumps(blob, indent=1) + "\n"
    )
    SNAPSHOT.write_text(json.dumps(blob, indent=1) + "\n")


def test_every_stream_lands_somewhere(sweep):
    for p in sweep:
        assert p["streams_done"] == N_STREAMS, p
        assert p["frames_encoded"] == N_STREAMS * N_FRAMES, p


def test_bigger_fleets_parallelize(sweep):
    # More nodes must shorten the fleet makespan (the burst is served in
    # parallel instead of trickling through one admission queue) and
    # raise how many streams run at once. Per-frame p99 is *not* gated
    # here: a mixed fleet trades queue wait for slower-node service, so
    # the tail can legitimately move either way.
    for rate in ARRIVAL_RATES:
        points = {p["nodes"]: p for p in sweep if p["arrival_rate"] == rate}
        assert points[4]["duration_s"] <= points[1]["duration_s"]
        assert points[4]["peak_concurrent"] >= points[1]["peak_concurrent"]


def test_no_regression_vs_committed_snapshot(sweep, committed):
    """The 25% machine-normalized gate (exact for simulated metrics)."""
    if committed is None:
        pytest.skip("no committed BENCH_FLEET.json yet (run once and commit)")
    by_key = {
        (p["nodes"], p["arrival_rate"]): p
        for p in committed.get("points", [])
    }
    failures = []
    for cur in sweep:
        ref = by_key.get((cur["nodes"], cur["arrival_rate"]))
        if ref is None:
            continue
        for key in DETERMINISTIC:
            if cur[key] != ref[key]:
                failures.append(
                    f"nodes={cur['nodes']} arr={cur['arrival_rate']:g}: "
                    f"{key} {ref[key]} -> {cur[key]} (deterministic "
                    "simulated metric moved without a model change)"
                )
        if ref["lp_cache_hit_rate"] and (
            cur["lp_cache_hit_rate"]
            < ref["lp_cache_hit_rate"] * (1 - REGRESSION_TOL)
        ):
            failures.append(
                f"nodes={cur['nodes']} arr={cur['arrival_rate']:g}: "
                f"LP-cache hit rate {cur['lp_cache_hit_rate']:.4f} fell "
                f">{REGRESSION_TOL:.0%} below snapshot "
                f"{ref['lp_cache_hit_rate']:.4f}"
            )
    assert not failures, "\n".join(failures)
