"""Ablations of FEVES design choices (DESIGN.md experiment index).

Isolates the contribution of each mechanism the paper motivates:

1. adaptive LP vs static equidistant splits ([8]-style) vs oracle static;
2. heterogeneous co-scheduling vs single-module ME offloading ([5]/[6]);
3. single vs dual copy engines (the §III concurrency discussion);
4. Δ data-reuse (MS/LS_BOUNDS) vs naive full re-transfers;
5. R* Dijkstra mapping vs pinning R* to the slowest device.
"""

import pytest

from conftest import save_result
from repro.baselines import (
    run_equidistant,
    run_offload_me,
    run_oracle_static,
)
from repro.codec.config import CodecConfig
from repro.core.config import FrameworkConfig
from repro.core.framework import FevesFramework
from repro.hw.device import DeviceSpec
from repro.hw.interconnect import LinkSpec
from repro.hw.presets import CPU_N, GPU_F
from repro.hw.presets import get_platform
from repro.hw.topology import Platform
from repro.report import format_table

CFG = CodecConfig(width=1920, height=1088, search_range=16, num_ref_frames=1)


def feves_fps(platform, fw_cfg=None, n=12):
    fw = FevesFramework(platform, CFG, fw_cfg or FrameworkConfig())
    fw.run_model(n)
    return fw.steady_state_fps()


@pytest.fixture(scope="module")
def scheduling_ablation():
    return {
        "FEVES (adaptive LP)": feves_fps(get_platform("SysNFF")),
        "oracle static": run_oracle_static(
            get_platform("SysNFF"), CFG, 12
        ).steady_state_fps(),
        "equidistant GPUs-only [8]": run_equidistant(
            get_platform("SysNFF"), CFG, 12, include_cpu=False
        ).steady_state_fps(),
        "equidistant incl. CPU": run_equidistant(
            get_platform("SysNFF"), CFG, 12, include_cpu=True
        ).steady_state_fps(),
        "ME offload [5,6] (SysNF)": run_offload_me(
            get_platform("SysNF"), CFG, 12
        ).steady_state_fps(),
    }


def test_scheduling_ablation_table(scheduling_ablation, emit, benchmark):
    benchmark.pedantic(
        feves_fps, args=(get_platform("SysNFF"),), rounds=2, iterations=1
    )
    rows = [[k, f"{v:.1f}"] for k, v in scheduling_ablation.items()]
    emit(
        "ablation_scheduling",
        format_table(
            ["scheduler", "fps"],
            rows,
            title="Ablation: scheduling policy on SysNFF (1080p, 32x32, 1RF)",
        ),
    )


def test_adaptive_matches_oracle_and_beats_static(scheduling_ablation, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    a = scheduling_ablation
    assert a["FEVES (adaptive LP)"] >= 0.93 * a["oracle static"]
    assert a["FEVES (adaptive LP)"] > 1.1 * a["equidistant GPUs-only [8]"]
    assert a["FEVES (adaptive LP)"] > 1.3 * a["equidistant incl. CPU"]
    assert a["FEVES (adaptive LP)"] > 2.0 * a["ME offload [5,6] (SysNF)"]
    # Naively adding a slow CPU to an equidistant split *hurts*.
    assert a["equidistant GPUs-only [8]"] > a["equidistant incl. CPU"]


def _sysnf_with_copy_engines(n_engines: int) -> Platform:
    gpu = DeviceSpec(
        name="GPU_F",
        kind="gpu",
        rates=GPU_F.rates,
        link=LinkSpec(
            h2d_gbps=GPU_F.link.h2d_gbps,
            d2h_gbps=GPU_F.link.d2h_gbps,
            latency_s=GPU_F.link.latency_s,
            copy_engines=n_engines,
        ),
    )
    return Platform(name=f"SysNF_ce{n_engines}", specs=[gpu, CPU_N])


def test_dual_copy_engine_helps(emit, benchmark):
    """Overlapping h2d with d2h shortens the schedule (never hurts)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    single = feves_fps(_sysnf_with_copy_engines(1))
    dual = feves_fps(_sysnf_with_copy_engines(2))
    emit(
        "ablation_copy_engines",
        format_table(
            ["copy engines", "fps"],
            [["1 (Fermi-like)", f"{single:.2f}"], ["2 (Kepler-like)", f"{dual:.2f}"]],
            title="Ablation: copy-engine concurrency on SysNF",
        ),
    )
    assert dual >= single * 0.999


def test_data_reuse_reduces_traffic(emit, benchmark):
    """Δ bookkeeping (MS/LS_BOUNDS) vs re-sending whole buffers."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    fw = FevesFramework(get_platform("SysNFF"), CFG, FrameworkConfig())
    fw.run_model(10)
    report = fw.reports[-1]
    plan_bytes = report.transfer_plan.total_bytes("h2d")
    # Naive: every non-R* accelerator refetches full CF + SF + MV each
    # frame for SME/MC instead of only the Δ segments.
    from repro.hw.interconnect import BufferSizes

    sizes = BufferSizes(CFG.width, CFG.height)
    n = CFG.mb_rows
    naive = 0
    for i, dev in enumerate(fw.platform.devices):
        if not dev.is_accelerator:
            continue
        naive += n * (sizes.cf_row + sizes.sf_row + sizes.mv_row)
        if dev.name == fw.rstar_device:
            naive += n * (sizes.cf_row_full + sizes.sf_row)
    savings = 1 - plan_bytes / naive
    emit(
        "ablation_data_reuse",
        format_table(
            ["variant", "h2d bytes/frame"],
            [
                ["FEVES Δ-reuse plan", f"{plan_bytes:,}"],
                ["naive full re-transfer", f"{naive:,}"],
                ["savings", f"{savings:.0%}"],
            ],
            title="Ablation: Data Access Management reuse (steady frame)",
        ),
    )
    assert plan_bytes < naive


def test_rstar_on_wrong_device_costs_time(benchmark):
    """Pinning R* to the CPU on SysHK (where the GPU is faster) must not
    beat the auto Dijkstra mapping."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    auto = feves_fps(get_platform("SysHK"))
    forced_cpu = feves_fps(
        get_platform("SysHK"), FrameworkConfig(centric="cpu")
    )
    assert auto >= forced_cpu
