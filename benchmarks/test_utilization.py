"""Device utilization and parallel efficiency of the FEVES schedule.

Not a paper figure, but the property behind all of them: the Fig. 4
orchestration keeps every compute engine busy and hides the transfers. We
report steady-state utilization per engine and the measured fraction of the
ideal aggregate bound (perfect splits, zero transfer cost).
"""

import pytest

from conftest import save_result
from repro.codec.config import CodecConfig
from repro.core.analysis import (
    communication_volume,
    parallel_efficiency,
    utilization_summary,
)
from repro.core.config import FrameworkConfig
from repro.core.framework import FevesFramework
from repro.hw.presets import get_platform
from repro.report import format_table

CFG = CodecConfig(width=1920, height=1088, search_range=16, num_ref_frames=1)


@pytest.fixture(scope="module")
def runs():
    out = {}
    for name in ("SysNF", "SysNFF", "SysHK"):
        fw = FevesFramework(get_platform(name), CFG, FrameworkConfig())
        fw.run_model(15)
        out[name] = fw
    return out


def test_utilization_table(runs, emit, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for name, fw in runs.items():
        summary = utilization_summary(fw.reports)
        eff = parallel_efficiency(fw.steady_state_fps(), fw.platform, CFG)
        vol = communication_volume(fw.reports)
        for res, u in sorted(summary.per_resource.items()):
            if res == "host.sync":
                continue
            rows.append([name, res, f"{u:.0%}", "", ""])
        rows.append(
            [name, "— parallel efficiency", "", f"{eff:.0%}",
             f"{vol['h2d'] / 1e6:.1f} MB/frame h2d"]
        )
    emit(
        "utilization",
        format_table(
            ["system", "resource", "busy", "vs ideal bound", "traffic"],
            rows,
            title="Steady-state utilization and parallel efficiency "
            "(1080p, 32x32, 1RF)",
        ),
    )


def test_gpu_engines_busy(runs, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for name, fw in runs.items():
        summary = utilization_summary(fw.reports)
        gpu = fw.platform.gpus[0].name
        assert summary.compute_utilization(gpu) > 0.8, name


def test_parallel_efficiency_high(runs, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for name, fw in runs.items():
        eff = parallel_efficiency(fw.steady_state_fps(), fw.platform, CFG)
        assert eff > 0.8, f"{name}: {eff:.2f}"
        assert eff <= 1.0, f"{name} beats the ideal bound?!"


def test_transfers_hidden_behind_compute(runs, benchmark):
    """Copy engines are busy a small fraction of the GPUs' compute time —
    the overlap story of Fig. 4."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    fw = runs["SysHK"]
    summary = utilization_summary(fw.reports)
    compute = summary.compute_utilization("GPU_K")
    copy = max(
        u for res, u in summary.per_resource.items() if "copy" in res
    )
    assert copy < compute
