"""Paper §IV scheduling-overhead claim.

"The scheduling overheads (introduced by the proposed framework) take, on
average, less than 2 ms per inter-frame encoding" — here measured as the
real wall-clock time of the Load Balancing solve + Data Access planning
per frame (everything between Algorithm 1's line 8 and the start of frame
execution). We report both the steady-state mean (decision caching makes
repeat frames nearly free) and the cost of a forced full LP solve.
"""

import pytest

from conftest import save_result
from repro.codec.config import CodecConfig
from repro.core.config import FrameworkConfig
from repro.core.framework import FevesFramework
from repro.hw.noise import GaussianJitter, NoiseModel
from repro.hw.presets import get_platform
from repro.report import format_table

CFG = CodecConfig(width=1920, height=1088, search_range=16, num_ref_frames=1)


def overhead_ms(platform: str, n: int = 50, fw_cfg: FrameworkConfig | None = None):
    fw = FevesFramework(get_platform(platform), CFG, fw_cfg or FrameworkConfig())
    fw.run_model(n)
    return fw.scheduling_overhead_ms


@pytest.fixture(scope="module")
def overheads():
    out = {}
    for platform in ("SysNF", "SysNFF", "SysHK"):
        out[platform] = {
            "steady": overhead_ms(platform),
            "no_cache": overhead_ms(
                platform, fw_cfg=FrameworkConfig(lb_cache_rtol=0.0)
            ),
            "jittered": overhead_ms(
                platform,
                fw_cfg=FrameworkConfig(
                    noise=NoiseModel(jitter=GaussianJitter(sigma=0.05))
                ),
            ),
        }
    return out


def test_overhead_table(overheads, emit, benchmark):
    benchmark.pedantic(overhead_ms, args=("SysHK", 20), rounds=2, iterations=1)
    rows = [
        [
            p,
            f"{v['steady']:.3f}",
            f"{v['no_cache']:.3f}",
            f"{v['jittered']:.3f}",
        ]
        for p, v in overheads.items()
    ]
    emit(
        "overhead",
        format_table(
            ["platform", "steady ms/frame", "no-cache ms/frame", "5% jitter ms/frame"],
            rows,
            title="Scheduling overhead per inter frame (paper claim: < 2 ms)",
        ),
    )


def test_steady_state_under_2ms(overheads, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for p, v in overheads.items():
        assert v["steady"] < 2.0, f"{p}: {v['steady']:.2f} ms"


def test_overhead_much_smaller_than_frame_time(overheads, benchmark):
    """Paper: 'significantly less than the time required to individually
    execute any inter-loop module'."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    fw = FevesFramework(get_platform("SysHK"), CFG, FrameworkConfig())
    fw.run_model(10)
    frame_ms = fw.frame_times_ms()[-1]
    assert overheads["SysHK"]["steady"] < 0.2 * frame_ms
