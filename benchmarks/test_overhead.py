"""Paper §IV scheduling-overhead claim, re-baselined for the fast path.

"The scheduling overheads (introduced by the proposed framework) take, on
average, less than 2 ms per inter-frame encoding" — here measured as the
real wall-clock time of the Load Balancing solve + Data Access planning
per frame (everything between Algorithm 1's line 8 and the start of frame
execution). Four modes per platform:

- ``cold``    — rtol=0 and every fast-path optimization disabled: a full
  LP solve pipeline every frame (the pre-optimization baseline);
- ``exact``   — rtol=0 with warm-start LP, characterization caches, and
  vectorized DES: must produce bit-identical simulated timelines to
  ``cold``, only cheaper;
- ``steady``  — the defaults (rtol decision cache on top): the number the
  paper's claim is checked against;
- ``jittered``— 5% execution-time noise defeats the rtol cache, bounding
  overhead when decisions can't be reused.

The committed root-level ``BENCH_OVERHEAD.json`` snapshot of the
cold-vs-exact comparison is produced by ``benchmarks/perf_smoke.py``,
which CI gates at 25% regression.
"""

import pytest

from repro.codec.config import CodecConfig
from repro.core.config import FrameworkConfig
from repro.core.framework import FevesFramework
from repro.hw.noise import GaussianJitter, NoiseModel
from repro.hw.presets import get_platform
from repro.report import format_table

CFG = CodecConfig(width=1920, height=1088, search_range=16, num_ref_frames=1)

COLD = dict(lb_cache_rtol=0.0, lp_warm_start=False, char_cache=False,
            des_fast=False)
EXACT = dict(lb_cache_rtol=0.0, lp_warm_start=True, char_cache=True,
             des_fast=True)


def run_model(platform: str, n: int = 50, fw_cfg: FrameworkConfig | None = None):
    fw = FevesFramework(get_platform(platform), CFG, fw_cfg or FrameworkConfig())
    fw.run_model(n)
    return fw


def overhead_ms(platform: str, n: int = 50, fw_cfg: FrameworkConfig | None = None):
    return run_model(platform, n, fw_cfg).scheduling_overhead_ms


@pytest.fixture(scope="module")
def overheads():
    out = {}
    for platform in ("SysNF", "SysNFF", "SysHK"):
        cold = run_model(platform, fw_cfg=FrameworkConfig(**COLD))
        exact = run_model(platform, fw_cfg=FrameworkConfig(**EXACT))
        out[platform] = {
            "cold": cold.scheduling_overhead_ms,
            "exact": exact.scheduling_overhead_ms,
            "identical": cold.frame_times_ms() == exact.frame_times_ms(),
            "steady": overhead_ms(platform),
            "jittered": overhead_ms(
                platform,
                fw_cfg=FrameworkConfig(
                    noise=NoiseModel(jitter=GaussianJitter(sigma=0.05))
                ),
            ),
        }
    return out


def test_overhead_table(overheads, emit, benchmark):
    benchmark.pedantic(overhead_ms, args=("SysHK", 20), rounds=2, iterations=1)
    rows = [
        [
            p,
            f"{v['cold']:.3f}",
            f"{v['exact']:.3f}",
            f"{v['cold'] / v['exact']:.1f}x",
            f"{v['steady']:.3f}",
            f"{v['jittered']:.3f}",
        ]
        for p, v in overheads.items()
    ]
    emit(
        "overhead",
        format_table(
            ["platform", "cold ms", "exact ms", "speedup",
             "steady ms", "5% jitter ms"],
            rows,
            title="Scheduling overhead per inter frame (paper claim: < 2 ms)",
        ),
    )


def test_steady_state_under_2ms(overheads, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for p, v in overheads.items():
        assert v["steady"] < 2.0, f"{p}: {v['steady']:.2f} ms"


def test_fast_path_speedup_on_syshk(overheads, benchmark):
    """Acceptance bar of the fast-path work: ≥5x less per-frame overhead
    on SysHK with warm-start + caching, at bit-identical timelines."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    v = overheads["SysHK"]
    assert v["identical"], "fast path diverged from cold path on SysHK"
    assert v["cold"] / v["exact"] >= 5.0, (
        f"SysHK: cold {v['cold']:.3f} ms / exact {v['exact']:.3f} ms "
        f"= {v['cold'] / v['exact']:.1f}x < 5x"
    )


def test_fast_path_bit_identical_everywhere(overheads, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for p, v in overheads.items():
        assert v["identical"], f"{p}: fast path diverged from cold path"


def test_overhead_much_smaller_than_frame_time(overheads, benchmark):
    """Paper: 'significantly less than the time required to individually
    execute any inter-loop module'."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    fw = run_model("SysHK", 10)
    frame_ms = fw.frame_times_ms()[-1]
    assert overheads["SysHK"]["steady"] < 0.2 * frame_ms
