"""Baselines: single-device, equidistant, ME-offload, oracle."""

import pytest

from repro.baselines import (
    run_equidistant,
    run_offload_me,
    run_oracle_static,
    run_single_device,
)
from repro.baselines.equidistant import equidistant_decision
from repro.baselines.offload_me import offload_me_decision
from repro.codec.config import CodecConfig
from repro.core.config import FrameworkConfig
from repro.core.framework import FevesFramework
from repro.hw.presets import get_platform

CFG = CodecConfig(width=1920, height=1088, search_range=16, num_ref_frames=1)


class TestSingleDevice:
    def test_rates_ordering(self):
        fps = {
            n: run_single_device(n, CFG, 5).steady_state_fps()
            for n in ("CPU_N", "CPU_H", "GPU_F", "GPU_K")
        }
        assert fps["CPU_N"] < fps["CPU_H"] < fps["GPU_F"] < fps["GPU_K"]

    def test_rejects_multi_device_platform(self):
        with pytest.raises(ValueError):
            run_single_device("SysHK", CFG, 2)


class TestEquidistant:
    def test_gpu_only_excludes_cpu(self):
        p = get_platform("SysNFF")
        d = equidistant_decision(p, CFG, include_cpu=False)
        cpu_idx = [i for i, dev in enumerate(p.devices) if not dev.is_accelerator][0]
        assert d.m.rows[cpu_idx] == 0
        assert sum(d.m.rows) == 68

    def test_include_cpu_splits_evenly(self):
        p = get_platform("SysNFF")
        d = equidistant_decision(p, CFG, include_cpu=True)
        assert max(d.m.rows) - min(d.m.rows) <= 1

    def test_two_equal_gpus_beat_one(self):
        one = run_single_device("GPU_F", CFG, 5).steady_state_fps()
        two = run_equidistant(get_platform("SysNFF"), CFG, 5).steady_state_fps()
        assert two > 1.5 * one

    def test_feves_beats_equidistant_with_cpu(self):
        """The headline ablation: adaptive LP vs static equal split."""
        p = get_platform("SysNFF")
        eq = run_equidistant(p.fresh(), CFG, 8, include_cpu=True)
        fw = FevesFramework(get_platform("SysNFF"), CFG, FrameworkConfig())
        fw.run_model(8)
        assert fw.steady_state_fps() > 1.2 * eq.steady_state_fps()


class TestOffloadMe:
    def test_limited_by_cpu_modules(self):
        r = run_offload_me(get_platform("SysNF"), CFG, 6)
        feves = FevesFramework(get_platform("SysNF"), CFG, FrameworkConfig())
        feves.run_model(6)
        assert feves.steady_state_fps() > 1.3 * r.steady_state_fps()

    def test_requires_gpu_and_cpu(self):
        with pytest.raises(ValueError):
            offload_me_decision(get_platform("GPU_K"), CFG)

    def test_decision_shape(self):
        p = get_platform("SysNF")
        d = offload_me_decision(p, CFG)
        assert d.m.rows == (68, 0)
        assert d.l.rows == (0, 68)
        assert d.s.rows == (0, 68)


class TestOracle:
    def test_feves_converges_to_oracle(self):
        """On a stationary platform, adaptive FEVES ≈ oracle static."""
        oracle = run_oracle_static(get_platform("SysHK"), CFG, 8)
        fw = FevesFramework(get_platform("SysHK"), CFG, FrameworkConfig())
        fw.run_model(8)
        assert fw.steady_state_fps() == pytest.approx(
            oracle.steady_state_fps(), rel=0.08
        )

    def test_oracle_beats_equidistant(self):
        oracle = run_oracle_static(get_platform("SysNFF"), CFG, 6)
        eq = run_equidistant(
            get_platform("SysNFF"), CFG, 6, include_cpu=True
        )
        assert oracle.steady_state_fps() > eq.steady_state_fps()
