"""Stream specs, deadline classes, and per-stream encoding sessions."""

import math

import pytest

from repro.hw.noise import FaultEvent, FaultSchedule
from repro.service.session import (
    DEADLINE_CLASSES,
    DONE,
    QUEUED,
    RUNNING,
    EncodingSession,
    SessionFaultView,
    StreamSpec,
)


class TestStreamSpec:
    def test_defaults(self):
        spec = StreamSpec("a")
        assert spec.fps_target == 25.0
        assert spec.period_s == pytest.approx(0.04)
        assert spec.deadline_class == "standard"
        assert spec.klass is DEADLINE_CLASSES["standard"]

    def test_validation(self):
        with pytest.raises(ValueError, match="fps_target"):
            StreamSpec("a", fps_target=0)
        with pytest.raises(ValueError, match="n_frames"):
            StreamSpec("a", n_frames=0)
        with pytest.raises(ValueError, match="deadline_class"):
            StreamSpec("a", deadline_class="platinum")
        with pytest.raises(ValueError, match="arrival_s"):
            StreamSpec("a", arrival_s=-1.0)

    def test_codec_config_carries_shape(self):
        spec = StreamSpec("a", width=640, height=368, search_range=8)
        cfg = spec.codec_config()
        assert (cfg.width, cfg.height, cfg.search_range) == (640, 368, 8)

    def test_background_has_no_deadline(self):
        assert math.isinf(DEADLINE_CLASSES["background"].budget_factor)


class TestSessionFaultView:
    def test_queries_answer_for_current_round(self):
        sched = FaultSchedule(
            [FaultEvent(frame=5, device="GPU_K", kind="dropout")]
        )
        view = SessionFaultView(sched)
        view.round = 4
        assert view.down(1, "GPU_K") is None  # frame arg ignored
        view.round = 5
        assert view.down(99, "GPU_K") is not None
        assert view.devices() == {"GPU_K"}
        assert not view.empty

    def test_degrade_factor_follows_round(self):
        sched = FaultSchedule(
            [FaultEvent(frame=3, device="GPU_K", kind="degrade", factor=2.5)]
        )
        view = SessionFaultView(sched)
        view.round = 2
        assert view.compute_factor(1, "GPU_K") == 1.0
        view.round = 3
        assert view.compute_factor(1, "GPU_K") == 2.5


class TestEncodingSession:
    def test_lifecycle_and_capture_clock(self):
        sess = EncodingSession(StreamSpec("a", fps_target=10, n_frames=2), "SysHK")
        assert sess.state == QUEUED
        assert not sess.has_pending(0.0)  # not admitted yet
        sess.admit(1.0)
        assert sess.state == RUNNING
        assert sess.capture_s(1) == 1.0
        assert sess.capture_s(2) == pytest.approx(1.1)
        assert sess.has_pending(1.0)
        rec = sess.step(1.0, 1.0, round_idx=1)
        assert rec.index == 1 and rec.share == 1.0
        assert rec.end_s == pytest.approx(1.0 + rec.tau_s)
        # frame 2 captures at 1.1; not pending before then
        assert not sess.has_pending(1.05)
        assert sess.has_pending(1.2)
        sess.step(1.2, 1.0, round_idx=2)
        assert sess.done and sess.state == DONE
        with pytest.raises(RuntimeError):
            sess.step(2.0, 1.0, round_idx=3)

    def test_half_share_doubles_frame_time(self):
        full = EncodingSession(StreamSpec("a", n_frames=1), "SysHK")
        full.admit(0.0)
        t_full = full.step(0.0, 1.0, 1).tau_s
        half = EncodingSession(StreamSpec("b", n_frames=1), "SysHK")
        half.admit(0.0)
        t_half = half.step(0.0, 0.5, 1).tau_s
        assert t_half == pytest.approx(2 * t_full, rel=1e-9)

    def test_busy_device_seconds_scale_with_share(self):
        sess = EncodingSession(StreamSpec("a", n_frames=1), "SysHK")
        sess.admit(0.0)
        rec = sess.step(0.0, 0.5, 1)
        # busy seconds are share-weighted: can never exceed the true
        # device-seconds available in the round
        for res, t in rec.busy_device_s.items():
            assert 0 <= t <= rec.tau_s * 0.5 + 1e-9

    def test_est_frame_s_is_share_normalized(self):
        a = EncodingSession(StreamSpec("a", n_frames=1), "SysHK")
        a.admit(0.0)
        a.step(0.0, 1.0, 1)
        b = EncodingSession(StreamSpec("b", n_frames=1), "SysHK")
        b.admit(0.0)
        b.step(0.0, 0.25, 1)
        assert b.est_frame_s == pytest.approx(a.est_frame_s, rel=1e-9)

    def test_deadline_for_class(self):
        rt = EncodingSession(
            StreamSpec("a", fps_target=10, deadline_class="realtime"), "SysHK"
        )
        assert rt.deadline_for(2.0) == pytest.approx(2.1)
        bg = EncodingSession(
            StreamSpec("b", fps_target=10, deadline_class="background"), "SysHK"
        )
        assert math.isinf(bg.deadline_for(2.0))

    def test_wait_time(self):
        sess = EncodingSession(StreamSpec("a", arrival_s=1.0), "SysHK")
        assert sess.wait_s == 0.0
        sess.admit(3.5)
        assert sess.wait_s == pytest.approx(2.5)
