"""Capacity model and admission control."""

import pytest

from repro.hw.presets import get_platform
from repro.service.admission import (
    ADMITTED,
    QUEUED,
    REJECTED,
    AdmissionController,
    CapacityModel,
)
from repro.service.session import EncodingSession, StreamSpec


def make_session(sid="s", **kw):
    return EncodingSession(StreamSpec(sid, **kw), "SysHK")


@pytest.fixture
def capacity():
    return CapacityModel(get_platform("SysHK"))


class TestCapacityModel:
    def test_platform_beats_single_device(self, capacity):
        cfg = StreamSpec("a").codec_config()
        combined = capacity.platform_frame_s(cfg, 1)
        for spec in capacity.specs:
            assert combined < capacity.device_frame_s(spec, cfg, 1)

    def test_live_subset_shrinks_capacity(self, capacity):
        cfg = StreamSpec("a").codec_config()
        full = capacity.fps_capacity(cfg, 1)
        cpu_only = capacity.fps_capacity(cfg, 1, live={"CPU_H"})
        assert cpu_only < full

    def test_no_live_devices_raises(self, capacity):
        with pytest.raises(ValueError, match="no live devices"):
            capacity.platform_frame_s(StreamSpec("a").codec_config(), 1, live=set())

    def test_demand_fraction_scales_with_fps(self, capacity):
        lo = capacity.demand_fraction(StreamSpec("a", fps_target=10))
        hi = capacity.demand_fraction(StreamSpec("b", fps_target=30))
        assert hi == pytest.approx(3 * lo)


class TestAdmissionController:
    def test_admit_until_capacity_then_queue_then_reject(self, capacity):
        ctrl = AdmissionController(capacity, headroom=1.0, max_queue=1)
        outcomes = [
            ctrl.offer(make_session(f"s{i}", fps_target=30.0), 0.0)
            for i in range(12)
        ]
        assert outcomes[0] == ADMITTED
        assert QUEUED in outcomes and REJECTED in outcomes
        # order is admit* queue* reject*
        assert outcomes == sorted(
            outcomes, key=[ADMITTED, QUEUED, REJECTED].index
        )
        assert outcomes.count(QUEUED) == 1
        assert ctrl.counts[ADMITTED] == outcomes.count(ADMITTED)
        assert ctrl.counts[REJECTED] == outcomes.count(REJECTED)

    def test_release_frees_capacity_for_drain(self, capacity):
        ctrl = AdmissionController(capacity, headroom=0.5, max_queue=4)
        a = make_session("a", fps_target=25.0)
        b = make_session("b", fps_target=25.0)
        assert ctrl.offer(a, 0.0) == ADMITTED
        assert ctrl.offer(b, 0.0) == QUEUED
        assert ctrl.drain(1.0) == []  # still full
        ctrl.release(a)
        assert ctrl.drain(2.0) == [b]
        assert b.admitted_s == 2.0
        assert ctrl.counts["completed"] == 1

    def test_liveness_backstop_admits_oversized_head(self, capacity):
        # a stream too big for even an idle platform must not wait forever
        ctrl = AdmissionController(capacity, headroom=0.1, max_queue=4)
        big = make_session("big", fps_target=60.0)
        assert ctrl.offer(big, 0.0) == QUEUED
        assert ctrl.drain(0.0) == [big]

    def test_fifo_head_blocks_queue(self, capacity):
        ctrl = AdmissionController(capacity, headroom=1.0, max_queue=4)
        filler = make_session("fill", fps_target=25.0)
        assert ctrl.offer(filler, 0.0) == ADMITTED
        big = make_session("big", fps_target=60.0)
        small = make_session("small", fps_target=1.0)
        ctrl.offer(big, 0.0)
        ctrl.offer(small, 0.0)
        # big doesn't fit next to filler; small would, but FIFO holds it back
        assert ctrl.drain(1.0) == []
        assert list(ctrl.queue) == [big, small]

    def test_measured_demand_replaces_model(self, capacity):
        ctrl = AdmissionController(capacity)
        sess = make_session("a", fps_target=25.0)
        model = ctrl.session_fraction(sess, None)
        sess.admit(0.0)
        sess.step(0.0, 1.0, 1)
        measured = ctrl.session_fraction(sess, None)
        assert measured != model
        assert measured == pytest.approx(25.0 * sess.est_frame_s)

    def test_dropout_shrinks_admission_capacity(self, capacity):
        ctrl = AdmissionController(capacity, headroom=1.0, max_queue=8)
        live_all = {"CPU_H", "GPU_K"}
        n_full = 0
        while ctrl.offer(
            make_session(f"f{n_full}", fps_target=25.0), 0.0, live_all
        ) == ADMITTED:
            n_full += 1
        ctrl2 = AdmissionController(capacity, headroom=1.0, max_queue=8)
        n_degraded = 0
        while ctrl2.offer(
            make_session(f"d{n_degraded}", fps_target=25.0), 0.0, {"CPU_H"}
        ) == ADMITTED:
            n_degraded += 1
        assert n_degraded < n_full

    def test_parameter_validation(self, capacity):
        with pytest.raises(ValueError, match="headroom"):
            AdmissionController(capacity, headroom=0)
        with pytest.raises(ValueError, match="max_queue"):
            AdmissionController(capacity, max_queue=-1)
