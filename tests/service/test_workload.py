"""Workload generation: arrivals, mixes, scripted submissions."""

import pytest

from repro.service.workload import (
    STREAM_MIXES,
    build_workload,
    parse_submit_spec,
    parse_submit_specs,
    poisson_arrivals,
)


class TestPoissonArrivals:
    def test_burst_at_zero_rate(self):
        assert poisson_arrivals(4, 0.0) == [0.0] * 4

    def test_deterministic_and_increasing(self):
        a = poisson_arrivals(10, 2.0, seed=7)
        b = poisson_arrivals(10, 2.0, seed=7)
        assert a == b
        assert all(x < y for x, y in zip(a, a[1:], strict=False))
        assert poisson_arrivals(10, 2.0, seed=8) != a

    def test_rate_sets_mean_gap(self):
        a = poisson_arrivals(2000, 4.0, seed=1)
        mean_gap = a[-1] / len(a)
        assert mean_gap == pytest.approx(0.25, rel=0.1)

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            poisson_arrivals(-1, 1.0)


class TestBuildWorkload:
    def test_uniform_defaults(self):
        wl = build_workload(3, n_frames=12, fps_target=30.0)
        assert [s.stream_id for s in wl] == ["s00", "s01", "s02"]
        assert all(s.n_frames == 12 and s.fps_target == 30.0 for s in wl)
        assert all(s.arrival_s == 0.0 for s in wl)

    def test_broadcast_mix_cycles(self):
        wl = build_workload(5, mix="broadcast")
        classes = [s.deadline_class for s in wl]
        assert classes == [
            "realtime", "standard", "standard", "background", "realtime",
        ]
        assert wl[3].num_ref_frames == 2  # background transcode template

    def test_conference_mix_shrinks_frames(self):
        wl = build_workload(2, mix="conference")
        assert all(s.width == 640 and s.deadline_class == "realtime" for s in wl)

    def test_unknown_mix_rejected(self):
        with pytest.raises(ValueError, match="unknown mix"):
            build_workload(2, mix="nope")

    def test_arrival_rate_staggers(self):
        wl = build_workload(4, arrival_rate=2.0, seed=3)
        arrivals = [s.arrival_s for s in wl]
        assert arrivals == sorted(arrivals)
        assert arrivals[-1] > 0

    def test_all_mixes_produce_valid_specs(self):
        for mix in STREAM_MIXES:
            wl = build_workload(len(STREAM_MIXES[mix]) * 2, mix=mix)
            assert len(wl) == len(STREAM_MIXES[mix]) * 2


class TestSubmitSpecs:
    def test_basic_and_classed(self):
        spec = parse_submit_spec("1.5:30:20", index=3)
        assert spec.stream_id == "s03"
        assert (spec.arrival_s, spec.fps_target, spec.n_frames) == (1.5, 30.0, 20)
        assert spec.deadline_class == "standard"
        rt = parse_submit_spec("0:25:10:realtime")
        assert rt.deadline_class == "realtime"

    def test_parse_many(self):
        specs = parse_submit_specs(["0:25:10", "2:30:5:background"])
        assert [s.stream_id for s in specs] == ["s00", "s01"]

    @pytest.mark.parametrize(
        "bad",
        ["0:25", "0:25:10:gold:extra", "x:25:10", "0:25:ten", "0:25:10:gold",
         "0:-5:10", "0:25:0"],
    )
    def test_malformed_names_token(self, bad):
        with pytest.raises(ValueError, match="bad submit spec"):
            parse_submit_spec(bad)
