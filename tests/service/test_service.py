"""End-to-end encoding service: sharing, parity, faults, exports."""

import json

import pytest

from repro.codec.config import CodecConfig
from repro.core.config import FrameworkConfig
from repro.core.framework import FevesFramework
from repro.hw.noise import FaultEvent, FaultSchedule
from repro.hw.presets import get_platform
from repro.service import (
    EncodingService,
    ServiceConfig,
    StreamSpec,
    build_workload,
)


def serve(workload, **cfg_kw):
    svc = EncodingService(ServiceConfig(**cfg_kw))
    metrics = svc.run(workload)
    return svc, metrics


class TestSingleStreamParity:
    def test_bit_identical_to_standalone_run(self):
        """ISSUE acceptance: one stream through the service == repro run."""
        n = 8
        spec = StreamSpec("solo", n_frames=n)
        fw = FevesFramework(
            get_platform("SysHK"), spec.codec_config(), FrameworkConfig()
        )
        fw.run_model(n)

        svc, metrics = serve([spec])
        sess = svc.sessions[0]
        assert metrics.stream("solo").frames == n
        for ref, got in zip(fw.reports, sess.framework.reports, strict=True):
            assert got.decision == ref.decision      # bit-identical rows
            assert got.tau_tot == ref.tau_tot        # exact, no tolerance
            assert got.rstar_device == ref.rstar_device

    def test_single_stream_runs_at_full_share(self):
        svc, _ = serve([StreamSpec("solo", n_frames=3)])
        assert all(r.share == 1.0 for r in svc.sessions[0].records)


class TestSharing:
    def test_two_streams_halve_throughput(self):
        svc, _ = serve([StreamSpec("solo", n_frames=2)])
        tau_solo = svc.sessions[0].records[0].tau_s
        svc2, _ = serve(
            [StreamSpec("a", n_frames=2), StreamSpec("b", n_frames=2)]
        )
        tau_shared = svc2.sessions[0].records[0].tau_s
        assert tau_shared == pytest.approx(2 * tau_solo, rel=0.01)

    def test_rounds_advance_by_slowest_session(self):
        svc, metrics = serve(
            [StreamSpec("a", n_frames=3), StreamSpec("b", n_frames=3)]
        )
        rec_a = svc.sessions[0].records
        rec_b = svc.sessions[1].records
        for ra, rb in zip(rec_a, rec_b, strict=True):
            assert ra.start_s == rb.start_s  # co-scheduled rounds
        assert metrics.rounds == 3

    def test_utilization_bounded_by_one(self):
        _, metrics = serve(build_workload(4, n_frames=3))
        assert metrics.device_utilization
        for util in metrics.device_utilization.values():
            assert 0 < util <= 1.0 + 1e-9

    def test_staggered_arrival_waits_for_clock(self):
        svc, _ = serve(
            [
                StreamSpec("now", n_frames=4),
                StreamSpec("later", n_frames=2, arrival_s=0.08),
            ]
        )
        later = svc.sessions[1]
        assert later.admitted_s >= 0.08
        assert later.records[0].start_s >= 0.08


class TestBackpressure:
    def test_overload_queues_and_rejects(self):
        # 60 fps HD streams: SysHK sustains ~1; the rest queue then spill
        wl = [
            StreamSpec(f"s{i:02d}", fps_target=60.0, n_frames=2)
            for i in range(8)
        ]
        svc, metrics = serve(wl, max_queue=2)
        assert metrics.admission["rejected"] == 8 - 1 - 2
        rejected = [s for s in svc.sessions if s.state == "rejected"]
        assert len(rejected) == metrics.admission["rejected"]
        assert all(not s.records for s in rejected)

    def test_queued_stream_admitted_after_drain(self):
        wl = [
            StreamSpec("big", fps_target=40.0, n_frames=2),
            StreamSpec("waiter", fps_target=40.0, n_frames=2),
        ]
        svc, metrics = serve(wl, headroom=0.9, max_queue=4)
        waiter = metrics.stream("waiter")
        assert waiter.state == "done"
        assert waiter.wait_s > 0
        assert metrics.admission["completed"] == 2

    def test_headroom_validation(self):
        with pytest.raises(ValueError, match="headroom"):
            ServiceConfig(headroom=0.0)


class TestFaults:
    FAULTS = FaultSchedule([FaultEvent(frame=2, device="GPU_K", kind="dropout")])

    def test_dropout_rebalances_every_stream(self):
        """ISSUE acceptance: device dropout during a multi-stream run."""
        svc, metrics = serve(
            build_workload(3, n_frames=4), faults=self.FAULTS
        )
        assert metrics.fault_events == 3  # every stream saw it
        for sess in svc.sessions:
            log = [e for e in sess.framework.fault_log if e.eventful]
            assert log and log[0].evicted == ("GPU_K",)
            # post-fault decisions exclude the dead device
            idx = [d.name for d in sess.framework.platform.devices].index(
                "GPU_K"
            )
            assert sess.framework.reports[-1].decision.m.rows[idx] == 0
        for m in metrics.streams:
            assert m.fault_events == 1
            assert m.frames == 4  # survivors finished every frame

    def test_fault_visible_in_trace(self, tmp_path):
        svc, _ = serve(build_workload(2, n_frames=3), faults=self.FAULTS)
        out = tmp_path / "trace.json"
        svc.export_trace(out)
        events = json.loads(out.read_text())["traceEvents"]
        instants = [e for e in events if e["ph"] == "i"]
        assert {e["pid"] for e in instants} == {1, 2}  # per-stream events

    def test_dropout_throttles_admission(self):
        always_down = FaultSchedule(
            [FaultEvent(frame=1, device="GPU_K", kind="dropout")]
        )
        wl = [
            StreamSpec(f"s{i}", fps_target=20.0, n_frames=1) for i in range(4)
        ]
        _, healthy = serve(wl, max_queue=0)
        _, degraded = serve(wl, max_queue=0, faults=always_down)
        assert degraded.admission["admitted"] < healthy.admission["admitted"]

    def test_unknown_fault_device_rejected_early(self):
        with pytest.raises(KeyError):
            EncodingService(
                ServiceConfig(
                    faults=FaultSchedule(
                        [FaultEvent(frame=1, device="nope", kind="dropout")]
                    )
                )
            )


class TestMetricsAndExport:
    def test_percentiles_and_miss_rate_reported(self):
        _, metrics = serve(build_workload(2, n_frames=4))
        assert metrics.p50_ms > 0
        assert metrics.p50_ms <= metrics.p95_ms <= metrics.p99_ms
        assert 0 <= metrics.deadline_miss_rate <= 1
        for m in metrics.streams:
            assert m.p50_ms > 0 and m.achieved_fps > 0

    def test_background_never_misses(self):
        _, metrics = serve(
            [
                StreamSpec(
                    "bg",
                    n_frames=3,
                    fps_target=200.0,  # hopeless target
                    deadline_class="background",
                )
            ]
        )
        assert metrics.stream("bg").deadline_miss_rate == 0.0

    def test_json_export_roundtrips(self, tmp_path):
        svc, metrics = serve(build_workload(2, n_frames=2))
        out = tmp_path / "metrics.json"
        svc.export_metrics(out)
        payload = json.loads(out.read_text())
        assert payload == metrics.to_dict()
        assert len(payload["streams"]) == 2

    def test_trace_export_namespaces_streams(self, tmp_path):
        svc, _ = serve(build_workload(2, n_frames=2))
        out = tmp_path / "trace.json"
        n = svc.export_trace(out)
        assert n > 0
        events = json.loads(out.read_text())["traceEvents"]
        names = {
            e["pid"]: e["args"]["name"]
            for e in events
            if e.get("name") == "process_name"
        }
        assert names == {
            1: "s00 (standard, 25 fps)",
            2: "s01 (standard, 25 fps)",
        }
        xs = [e for e in events if e["ph"] == "X"]
        assert {e["pid"] for e in xs} == {1, 2}
        assert all(e["args"]["stream"].startswith("s0") for e in xs)

    def test_metrics_before_run_raises(self):
        with pytest.raises(RuntimeError, match="nothing served"):
            EncodingService().metrics
