"""Service metrics: pinned percentile interpolation and the shared LP cache.

``latency_percentiles_ms`` historically relied on numpy's *default*
percentile method, which numpy has renamed/re-documented across versions
and which makes small-sample values (service smoke runs routinely have
n < 20) an implementation detail. It is now pinned to ``method="linear"``
(fractional order statistic ``(n-1)·q/100``, interpolated); these tests
fix the exact values so any drift — numpy's or ours — fails loudly.
"""

from __future__ import annotations

import pytest

from repro.service.metrics import latency_percentiles_ms
from repro.service.scheduler import RoundLPBatch
from repro.service.service import EncodingService, ServiceConfig
from repro.service.session import StreamSpec


class TestLatencyPercentiles:
    def test_empty_sample_is_all_zeros(self):
        assert latency_percentiles_ms([]) == {
            "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }

    def test_single_sample_reports_that_value(self):
        got = latency_percentiles_ms([0.040])
        assert got["p50"] == pytest.approx(40.0)
        assert got["p95"] == pytest.approx(40.0)
        assert got["p99"] == pytest.approx(40.0)

    def test_two_samples_interpolate_linearly(self):
        got = latency_percentiles_ms([0.010, 0.030])
        assert got["p50"] == pytest.approx(20.0)
        assert got["p95"] == pytest.approx(29.0)
        assert got["p99"] == pytest.approx(29.8)

    def test_four_samples_exact_linear_values(self):
        # n=4: order statistic index (n-1)·q/100 = 3·q/100.
        # p50 -> 1.5 -> 25.0; p95 -> 2.85 -> 38.5; p99 -> 2.97 -> 39.7.
        got = latency_percentiles_ms([0.010, 0.020, 0.030, 0.040])
        assert got["p50"] == pytest.approx(25.0)
        assert got["p95"] == pytest.approx(38.5)
        assert got["p99"] == pytest.approx(39.7)

    def test_order_invariant(self):
        a = latency_percentiles_ms([0.010, 0.040, 0.020, 0.030])
        b = latency_percentiles_ms([0.040, 0.030, 0.020, 0.010])
        assert a == b

    def test_identical_samples_degenerate(self):
        got = latency_percentiles_ms([0.025] * 7)
        assert got == {"p50": 25.0, "p95": 25.0, "p99": 25.0}


class TestSharedLPCache:
    def test_sessions_share_one_solve_cache(self):
        service = EncodingService(ServiceConfig(platform="SysHK", headroom=4.0))
        workload = [
            StreamSpec(stream_id=f"s{k}", n_frames=4, width=704, height=576)
            for k in range(3)
        ]
        service.run(workload)
        for session in service.sessions:
            assert session.framework.balancer.lp_cache is service.lp_batch.cache
        # Equal shares of identical streams build byte-identical LPs:
        # the cross-session dedup must actually fire.
        assert service.lp_batch.hits > 0
        assert 0.0 < service.lp_batch.hit_rate <= 1.0

    def test_single_stream_unaffected_by_sharing(self):
        """One session at share 1.0 must stay bit-identical to a
        standalone run (the service's standing invariant)."""
        from repro.codec.config import CodecConfig
        from repro.core.config import FrameworkConfig
        from repro.core.framework import FevesFramework
        from repro.hw.presets import get_platform

        spec = StreamSpec(stream_id="solo", n_frames=5, width=704, height=576)
        service = EncodingService(ServiceConfig(platform="SysHK"))
        service.run([spec])

        fw = FevesFramework(
            get_platform("SysHK"),
            CodecConfig(width=704, height=576),
            FrameworkConfig(),
        )
        for _ in range(5):
            fw.encode_next_inter()
        [session] = service.sessions
        got = [r.timeline.tau_tot for r in session.framework.reports]
        want = [r.timeline.tau_tot for r in fw.reports]
        assert got == want


class TestRoundLPBatch:
    def test_counters_passthrough(self):
        batch = RoundLPBatch()
        assert batch.hits == 0
        assert batch.misses == 0
        assert batch.hit_rate == 0.0
