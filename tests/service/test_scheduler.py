"""Deadline-slack weighted capacity partitioning."""

import pytest

from repro.service.scheduler import CoScheduler, SchedulerConfig
from repro.service.session import EncodingSession, StreamSpec


def admitted(sid, now=0.0, **kw):
    sess = EncodingSession(StreamSpec(sid, **kw), "SysHK")
    sess.admit(now)
    return sess


class TestSchedulerConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="boost_min"):
            SchedulerConfig(boost_min=2.0, boost_max=1.0)
        with pytest.raises(ValueError, match="min_share"):
            SchedulerConfig(min_share=0.0)


class TestBoost:
    def test_clamped_slack_curve(self):
        sched = CoScheduler()
        assert sched.boost(2.0) == 0.25   # comfortable → floor
        assert sched.boost(1.0) == 1.0    # one period of slack → neutral
        assert sched.boost(0.0) == 2.0    # deadline now → doubled
        assert sched.boost(-5.0) == 4.0   # hopelessly late → ceiling
        assert sched.boost(float("inf")) == 0.25  # no deadline


class TestPartition:
    def test_single_session_gets_exactly_one(self):
        sched = CoScheduler()
        shares = sched.partition([admitted("solo")], now=0.0)
        assert shares == {"solo": 1.0}  # exact, not approximately

    def test_shares_sum_to_one(self):
        sched = CoScheduler()
        sessions = [admitted(f"s{i}") for i in range(5)]
        shares = sched.partition(sessions, now=0.0)
        assert sum(shares.values()) == pytest.approx(1.0)
        assert all(s > 0 for s in shares.values())

    def test_equal_streams_get_equal_shares(self):
        sched = CoScheduler()
        shares = sched.partition([admitted("a"), admitted("b")], now=0.0)
        assert shares["a"] == pytest.approx(shares["b"])

    def test_realtime_outweighs_background(self):
        sched = CoScheduler()
        shares = sched.partition(
            [
                admitted("rt", deadline_class="realtime"),
                admitted("bg", deadline_class="background"),
            ],
            now=0.0,
        )
        assert shares["rt"] > shares["bg"]

    def test_late_stream_is_boosted(self):
        sched = CoScheduler()
        early = admitted("early", now=0.0, fps_target=10)
        late = admitted("late", now=0.0, fps_target=10)
        # early has kept pace (3 frames done, next capture at t=0.3 with a
        # comfortable deadline); late is still on frame 1, whose deadline
        # (0.2) is already past at now=0.5
        for k in range(3):
            early.step(0.1 * k, 1.0, k + 1)
        shares = sched.partition([early, late], now=0.5)
        assert shares["late"] > shares["early"]

    def test_heavier_stream_gets_larger_share(self):
        sched = CoScheduler()
        shares = sched.partition(
            [
                admitted("hd", width=1920, height=1088),
                admitted("sd", width=640, height=368),
            ],
            now=0.0,
        )
        assert shares["hd"] > shares["sd"]

    def test_min_share_floor(self):
        sched = CoScheduler(SchedulerConfig(min_share=0.1))
        shares = sched.partition(
            [
                admitted("big", fps_target=120.0),
                admitted("tiny", fps_target=1.0, deadline_class="background"),
            ],
            now=0.0,
        )
        # after one renormalization the floored share can dip slightly
        # below the nominal floor but must stay in its vicinity
        assert shares["tiny"] >= 0.1 / (1 + 0.1)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_empty_returns_empty(self):
        assert CoScheduler().partition([], now=0.0) == {}
