"""SSIM metric."""

import numpy as np
import pytest

from repro.codec.quality import ssim


class TestSsim:
    def test_identical_planes_score_one(self, rng):
        a = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        assert ssim(a, a) == pytest.approx(1.0)

    def test_range(self, rng):
        a = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        b = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        s = ssim(a, b)
        assert -1.0 < s < 1.0

    def test_small_noise_scores_high(self, rng):
        a = rng.integers(40, 200, (64, 64)).astype(np.uint8)
        noise = rng.normal(0, 2, a.shape)
        b = np.clip(a + noise, 0, 255).astype(np.uint8)
        assert ssim(a, b) > 0.9

    def test_structural_damage_scores_lower_than_brightness_shift(self, rng):
        """SSIM's point: a uniform shift hurts less than scrambling."""
        a = rng.integers(40, 200, (64, 64)).astype(np.uint8)
        shifted = np.clip(a.astype(int) + 10, 0, 255).astype(np.uint8)
        scrambled = rng.permutation(a.ravel()).reshape(a.shape)
        assert ssim(a, shifted) > ssim(a, scrambled)

    def test_ordering_matches_degradation(self, rng):
        a = rng.integers(40, 200, (64, 64)).astype(np.uint8)
        mild = np.clip(a + rng.normal(0, 3, a.shape), 0, 255).astype(np.uint8)
        harsh = np.clip(a + rng.normal(0, 30, a.shape), 0, 255).astype(np.uint8)
        assert ssim(a, mild) > ssim(a, harsh)

    def test_symmetry(self, rng):
        a = rng.integers(0, 256, (32, 32), dtype=np.uint8)
        b = rng.integers(0, 256, (32, 32), dtype=np.uint8)
        assert ssim(a, b) == pytest.approx(ssim(b, a))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            ssim(np.zeros((8, 8)), np.zeros((8, 9)))

    def test_bad_window(self):
        a = np.zeros((16, 16), dtype=np.uint8)
        with pytest.raises(ValueError):
            ssim(a, a, window=1)
        with pytest.raises(ValueError):
            ssim(a, a, window=64)

    def test_encoder_recon_ssim_reasonable(self):
        from repro.codec.config import CodecConfig
        from repro.codec.encoder import ReferenceEncoder
        from repro.video.generator import SyntheticSequence

        cfg = CodecConfig(width=128, height=96, search_range=8)
        clip = SyntheticSequence(width=128, height=96, seed=3).frames(3)
        out = ReferenceEncoder(cfg).encode_sequence(clip)
        for src, enc in zip(clip, out, strict=True):
            assert ssim(src.y, enc.recon.y) > 0.85
