"""DBL: boundary strengths and edge filters."""

import numpy as np

from repro.codec.deblock import (
    ALPHA_TABLE,
    BETA_TABLE,
    TC0_TABLE,
    BlockInfo,
    boundary_strength,
    deblock_plane,
)


def make_info(gh: int, gw: int) -> BlockInfo:
    return BlockInfo(
        mv=np.zeros((gh, gw, 2), dtype=np.int32),
        ref=np.zeros((gh, gw), dtype=np.int32),
        cnz=np.zeros((gh, gw), dtype=bool),
        intra=np.zeros((gh, gw), dtype=bool),
    )


class TestTables:
    def test_table_lengths(self):
        assert len(ALPHA_TABLE) == 52
        assert len(BETA_TABLE) == 52
        assert TC0_TABLE.shape == (3, 52)

    def test_monotone_nondecreasing(self):
        assert (np.diff(ALPHA_TABLE) >= 0).all()
        assert (np.diff(BETA_TABLE) >= 0).all()
        assert (np.diff(TC0_TABLE, axis=1) >= 0).all()

    def test_zero_below_16(self):
        assert (ALPHA_TABLE[:16] == 0).all()
        assert (BETA_TABLE[:16] == 0).all()


class TestBoundaryStrength:
    def test_all_zero_when_static(self):
        info = make_info(8, 8)
        bs = boundary_strength(info, axis=1, edge_idx=4, mb_edge=True)
        assert (bs == 0).all()

    def test_intra_mb_edge_is_4(self):
        info = make_info(8, 8)
        info.intra[:, 4:] = True
        bs = boundary_strength(info, axis=1, edge_idx=4, mb_edge=True)
        assert (bs == 4).all()

    def test_intra_inner_edge_is_3(self):
        info = make_info(8, 8)
        info.intra[:, :] = True
        bs = boundary_strength(info, axis=1, edge_idx=1, mb_edge=False)
        assert (bs == 3).all()

    def test_coded_coeffs_give_2(self):
        info = make_info(8, 8)
        info.cnz[:, 4] = True
        bs = boundary_strength(info, axis=1, edge_idx=4, mb_edge=True)
        assert (bs == 2).all()

    def test_mv_difference_gives_1(self):
        info = make_info(8, 8)
        info.mv[:, 4:, 1] = 4  # one full pel (4 quarter units)
        bs = boundary_strength(info, axis=1, edge_idx=4, mb_edge=True)
        assert (bs == 1).all()

    def test_small_mv_difference_gives_0(self):
        info = make_info(8, 8)
        info.mv[:, 4:, 1] = 3  # < 4 quarter units
        bs = boundary_strength(info, axis=1, edge_idx=4, mb_edge=True)
        assert (bs == 0).all()

    def test_ref_difference_gives_1(self):
        info = make_info(8, 8)
        info.ref[:, 4:] = 1
        bs = boundary_strength(info, axis=1, edge_idx=4, mb_edge=True)
        assert (bs == 1).all()

    def test_horizontal_axis(self):
        info = make_info(8, 8)
        info.intra[4:, :] = True
        bs = boundary_strength(info, axis=0, edge_idx=4, mb_edge=True)
        assert bs.shape == (8,)
        assert (bs == 4).all()

    def test_priority_intra_over_cnz(self):
        info = make_info(8, 8)
        info.cnz[:, :] = True
        info.intra[:, :] = True
        bs = boundary_strength(info, axis=1, edge_idx=4, mb_edge=True)
        assert (bs == 4).all()


class TestDeblockPlane:
    def test_flat_plane_unchanged(self):
        """Filtering a uniform plane is a no-op regardless of bS."""
        plane = np.full((32, 32), 90, dtype=np.uint8)
        info = make_info(8, 8)
        info.intra[:, :] = True  # maximal bS everywhere
        out = deblock_plane(plane, info, qp=40)
        np.testing.assert_array_equal(out, plane)

    def test_blocking_artifact_smoothed(self):
        """A step at an MB edge with bS=4 must shrink."""
        plane = np.full((32, 32), 80, dtype=np.uint8)
        plane[:, 16:] = 95  # step of 15 at MB boundary
        info = make_info(8, 8)
        info.intra[:, :] = True
        out = deblock_plane(plane, info, qp=36)
        step_before = abs(int(plane[0, 16]) - int(plane[0, 15]))
        step_after = abs(int(out[0, 16]) - int(out[0, 15]))
        assert step_after < step_before

    def test_real_edge_preserved_at_low_qp(self):
        """A huge step (real content edge) exceeds alpha and is untouched."""
        plane = np.full((32, 32), 30, dtype=np.uint8)
        plane[:, 16:] = 220
        info = make_info(8, 8)
        info.intra[:, :] = True
        out = deblock_plane(plane, info, qp=20)
        np.testing.assert_array_equal(out, plane)

    def test_bs0_everywhere_is_identity(self, rng):
        plane = rng.integers(0, 256, (32, 32), dtype=np.uint8)
        info = make_info(8, 8)
        out = deblock_plane(plane, info, qp=51)
        np.testing.assert_array_equal(out, plane)

    def test_chroma_plane_shape_and_smoothing(self):
        plane = np.full((16, 16), 80, dtype=np.uint8)  # chroma of a 32x32 frame
        plane[:, 8:] = 92
        info = make_info(8, 8)
        info.intra[:, :] = True
        out = deblock_plane(plane, info, qp=36, chroma=True)
        assert out.shape == plane.shape
        assert abs(int(out[0, 8]) - int(out[0, 7])) < 12

    def test_output_dtype_and_range(self, rng):
        plane = rng.integers(0, 256, (32, 32), dtype=np.uint8)
        info = make_info(8, 8)
        info.cnz[:, :] = True
        out = deblock_plane(plane, info, qp=45)
        assert out.dtype == np.uint8
