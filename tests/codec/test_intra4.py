"""Intra_4x4 prediction: directional modes, MPM signalling, I4/I16 decision."""

import numpy as np
import pytest

from repro.codec.bitstream import BitReader, BitWriter
from repro.codec.config import CodecConfig
from repro.codec.intra import intra_encode_frame
from repro.codec.intra4 import (
    I4_DC,
    I4_DDL,
    I4_DDR,
    I4_H,
    I4_V,
    N_I4_MODES,
    available_modes4,
    choose_mode4,
    decode_mode,
    encode_mode,
    mode_signal_bits,
    most_probable_mode,
    neighbours4,
    predict4,
)
from repro.codec.frames import YuvFrame


def plane_with_neighbours(val=100):
    return np.full((32, 32), val, dtype=np.uint8)


class TestNeighbours:
    def test_corner_block_has_nothing(self):
        top, left, corner, tr = neighbours4(plane_with_neighbours(), 0, 0)
        assert top is None and left is None and corner is None and tr is None

    def test_interior_block_has_all(self):
        top, left, corner, tr = neighbours4(plane_with_neighbours(), 8, 8)
        assert top is not None and left is not None
        assert corner == 100 and tr is not None

    def test_top_right_replicated_at_mb_boundary(self):
        """Block in the last block-column of an MB (c0%16==12) with blocks
        above undecoded gets top[3] replication."""
        p = plane_with_neighbours()
        p[3, 12:16] = 50       # top row of the block at (4, 12)
        p[3, 16:20] = 200      # the *actual* top-right samples (not decodable)
        top, left, corner, tr = neighbours4(p, 4, 12)
        np.testing.assert_array_equal(tr, [50, 50, 50, 50])

    def test_top_right_real_at_mb_row_start(self):
        """At r0%16==0 the row above belongs to the previous MB row —
        fully decoded, so the true samples are used."""
        p = plane_with_neighbours()
        p[15, 16:20] = 200
        top, left, corner, tr = neighbours4(p, 16, 12)
        np.testing.assert_array_equal(tr, [200, 200, 200, 200])


class TestPredict4:
    def test_v_and_h(self):
        p = plane_with_neighbours()
        p[7, 8:12] = np.arange(4, dtype=np.uint8)
        top, left, corner, tr = neighbours4(p, 8, 8)
        pred = predict4(I4_V, top, left, corner, tr)
        for y in range(4):
            np.testing.assert_array_equal(pred[y], np.arange(4))
        p2 = plane_with_neighbours()
        p2[8:12, 7] = np.arange(4, dtype=np.uint8)
        top, left, corner, tr = neighbours4(p2, 8, 8)
        pred = predict4(I4_H, top, left, corner, tr)
        for x in range(4):
            np.testing.assert_array_equal(pred[:, x], np.arange(4))

    def test_ddl_follows_down_left_diagonal(self):
        """A hard edge in the top samples propagates along the ↙ diagonal."""
        p = plane_with_neighbours(0)
        p[7, 8:16] = [0, 0, 0, 0, 255, 255, 255, 255]
        top, left, corner, tr = neighbours4(p, 8, 8)
        pred = predict4(I4_DDL, top, left, corner, tr)
        # Diagonal constancy: pred[y][x] depends only on x+y.
        for s in range(1, 7):
            vals = [pred[y, s - y] for y in range(4) if 0 <= s - y <= 3]
            assert max(vals) - min(vals) <= 1

    def test_ddr_diagonal_constancy(self):
        p = plane_with_neighbours()
        rng = np.random.default_rng(0)
        p[7, 8:12] = rng.integers(0, 255, 4)
        p[8:12, 7] = rng.integers(0, 255, 4)
        top, left, corner, tr = neighbours4(p, 8, 8)
        pred = predict4(I4_DDR, top, left, corner, tr)
        # pred[y][x] depends only on x−y.
        for d in range(-3, 4):
            vals = [pred[y, y + d] for y in range(4) if 0 <= y + d <= 3]
            assert len(set(vals)) == 1

    def test_dc_fallback(self):
        pred = predict4(I4_DC, None, None, None, None)
        assert (pred == 128).all()

    def test_unavailable_modes_raise(self):
        with pytest.raises(ValueError):
            predict4(I4_V, None, None, None, None)
        with pytest.raises(ValueError):
            predict4(I4_DDR, np.zeros(4), None, None, None)

    def test_availability_sets(self):
        assert available_modes4(None, None, None) == [I4_DC]
        full = available_modes4(np.zeros(4), np.zeros(4), 0)
        assert set(full) == {I4_V, I4_H, I4_DC, I4_DDL, I4_DDR}


class TestMpmSignalling:
    def test_mpm_rule(self):
        assert most_probable_mode(None, None) == I4_DC
        assert most_probable_mode(I4_V, None) == I4_DC
        assert most_probable_mode(I4_H, I4_DDL) == I4_H

    @pytest.mark.parametrize("mode", range(N_I4_MODES))
    @pytest.mark.parametrize("mpm", range(N_I4_MODES))
    def test_mode_roundtrip(self, mode, mpm):
        w = BitWriter()
        encode_mode(w, mode, mpm)
        assert w.bit_count == mode_signal_bits(mode, mpm)
        r = BitReader(w.to_bytes())
        assert decode_mode(r, mpm) == mode

    def test_mpm_hit_costs_one_bit(self):
        assert mode_signal_bits(I4_H, I4_H) == 1
        assert mode_signal_bits(I4_H, I4_V) == 3


class TestChooseMode4:
    def test_vertical_stripes_pick_v(self):
        p = plane_with_neighbours()
        stripes = np.array([0, 255, 0, 255], dtype=np.uint8)
        p[7, 8:12] = stripes
        cur = np.broadcast_to(stripes, (4, 4)).copy()
        mode, pred = choose_mode4(cur, p, 8, 8, mpm=I4_DC, lam=5.0)
        assert mode == I4_V
        np.testing.assert_array_equal(pred[0], stripes)

    def test_mpm_breaks_ties(self):
        """On flat content every mode predicts perfectly — the MPM's 1-bit
        signal wins."""
        p = plane_with_neighbours(90)
        cur = np.full((4, 4), 90, dtype=np.uint8)
        for mpm in (I4_V, I4_H, I4_DDR):
            mode, _ = choose_mode4(cur, p, 8, 8, mpm=mpm, lam=5.0)
            assert mode == mpm


class TestFrameLevel:
    def test_detailed_content_uses_i4(self, rng):
        cfg = CodecConfig(width=128, height=96, search_range=8)
        y = rng.integers(0, 256, (96, 128), dtype=np.uint8)
        frame = YuvFrame(
            y,
            np.full((48, 64), 128, dtype=np.uint8),
            np.full((48, 64), 128, dtype=np.uint8),
        )
        result = intra_encode_frame(frame, cfg)
        assert result.mb_types is not None
        assert result.mb_types.sum() > 0  # some MBs pick Intra_4x4

    def test_flat_content_uses_i16(self):
        cfg = CodecConfig(width=128, height=96, search_range=8)
        frame = YuvFrame.blank(128, 96, value=90)
        result = intra_encode_frame(frame, cfg)
        assert result.mb_types is not None
        # I16 signalling is cheaper everywhere except possibly the very
        # first MB, where I4's progressive in-MB prediction beats the 128
        # fallback predictor.
        assert result.mb_types.reshape(-1)[1:].sum() == 0

    def test_i4_improves_rate_on_structured_content(self):
        """Diagonal edges are exactly what the directional modes catch."""
        yy, xx = np.mgrid[0:96, 0:128]
        y = ((xx + yy) % 16 * 16).astype(np.uint8)  # diagonal sawtooth
        frame = YuvFrame(
            y,
            np.full((48, 64), 128, dtype=np.uint8),
            np.full((48, 64), 128, dtype=np.uint8),
        )
        cfg = CodecConfig(width=128, height=96, search_range=8)
        result = intra_encode_frame(frame, cfg)
        assert result.mb_types.mean() > 0.5  # I4 dominates

    def test_stream_roundtrip_with_i4(self):
        from repro.codec.decoder import SequenceDecoder
        from repro.codec.stream import StreamEncoder
        from repro.video.generator import moving_objects_sequence

        cfg = CodecConfig(width=128, height=96, search_range=8)
        clip = moving_objects_sequence(width=128, height=96, count=3, seed=31)
        enc = StreamEncoder(cfg)
        dec = SequenceDecoder.from_header(enc.sequence_header())
        for f in clip:
            stats, packet = enc.encode_frame(f)
            rec = dec.decode_packet(packet)
            np.testing.assert_array_equal(stats.recon.y, rec.y)
