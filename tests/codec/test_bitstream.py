"""Bit-level writer/reader."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec.bitstream import BitReader, BitWriter


class TestBitWriter:
    def test_bit_count_tracks_everything(self):
        w = BitWriter()
        w.write_bit(1)
        w.write_bits(5, 3)
        assert w.bit_count == 4

    def test_byte_padding(self):
        w = BitWriter()
        w.write_bits(0b101, 3)
        data = w.to_bytes()
        assert data == bytes([0b10100000])

    def test_multi_byte(self):
        w = BitWriter()
        w.write_bits(0xABCD, 16)
        assert w.to_bytes() == bytes([0xAB, 0xCD])

    def test_invalid_bit(self):
        with pytest.raises(ValueError):
            BitWriter().write_bit(2)

    def test_value_too_wide(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits(8, 3)

    def test_negative_value(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits(-1, 4)

    def test_to_bytes_idempotent(self):
        w = BitWriter()
        w.write_bits(0b11, 2)
        assert w.to_bytes() == w.to_bytes()


class TestBitReader:
    def test_read_bits(self):
        r = BitReader(bytes([0b10110000]))
        assert r.read_bit() == 1
        assert r.read_bits(3) == 0b011
        assert r.bits_read == 4

    def test_eof(self):
        r = BitReader(b"")
        with pytest.raises(EOFError):
            r.read_bit()

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_bit_sequence(self, bits):
        w = BitWriter()
        for b in bits:
            w.write_bit(b)
        r = BitReader(w.to_bytes())
        assert [r.read_bit() for _ in bits] == bits

    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=32, max_value=40),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_values(self, value, width):
        w = BitWriter()
        w.write_bits(value, width)
        r = BitReader(w.to_bytes())
        assert r.read_bits(width) == value
