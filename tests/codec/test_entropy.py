"""Entropy coding: Exp-Golomb and CAVLC-lite round trips + exact lengths."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.codec.bitstream import BitReader, BitWriter
from repro.codec.entropy import (
    ZIGZAG_4X4,
    block_bits,
    read_block,
    read_chroma_dc,
    read_se,
    read_ue,
    se_len,
    ue_len,
    write_block,
    write_chroma_dc,
    write_se,
    write_ue,
    zigzag_scan,
    zigzag_unscan,
)

levels = st.integers(min_value=-512, max_value=512)


class TestExpGolomb:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=100, deadline=None)
    def test_ue_roundtrip_and_length(self, k):
        w = BitWriter()
        write_ue(w, k)
        assert w.bit_count == ue_len(k)
        r = BitReader(w.to_bytes())
        assert read_ue(r) == k

    @given(st.integers(min_value=-10**5, max_value=10**5))
    @settings(max_examples=100, deadline=None)
    def test_se_roundtrip_and_length(self, v):
        w = BitWriter()
        write_se(w, v)
        assert w.bit_count == se_len(v)
        r = BitReader(w.to_bytes())
        assert read_se(r) == v

    def test_known_ue_codes(self):
        # Classic table: 0→1, 1→010, 2→011, 3→00100 …
        for k, want_len in [(0, 1), (1, 3), (2, 3), (3, 5), (6, 5), (7, 7)]:
            assert ue_len(k) == want_len

    def test_se_mapping(self):
        # signed order: 0, 1, −1, 2, −2 → ue 0,1,2,3,4
        for v, want in [(0, 1), (1, 3), (-1, 3), (2, 5), (-2, 5)]:
            assert se_len(v) == want

    def test_ue_rejects_negative(self):
        with pytest.raises(ValueError):
            write_ue(BitWriter(), -1)
        with pytest.raises(ValueError):
            ue_len(np.array([-1]))

    def test_vectorized_lengths(self):
        ks = np.array([0, 1, 2, 3, 10])
        np.testing.assert_array_equal(ue_len(ks), [1, 3, 3, 5, 7])


class TestZigzag:
    def test_order_matches_standard(self):
        assert ZIGZAG_4X4[:6] == ((0, 0), (0, 1), (1, 0), (2, 0), (1, 1), (0, 2))

    def test_scan_unscan_roundtrip(self, rng):
        b = rng.integers(-9, 9, (7, 4, 4)).astype(np.int64)
        np.testing.assert_array_equal(zigzag_unscan(zigzag_scan(b)), b)

    def test_scan_visits_every_cell_once(self):
        assert sorted(ZIGZAG_4X4) == [(i, j) for i in range(4) for j in range(4)]


class TestBlockCoding:
    @given(arrays(np.int64, (4, 4), elements=levels))
    @settings(max_examples=80, deadline=None)
    def test_block_roundtrip(self, block):
        w = BitWriter()
        write_block(w, block)
        r = BitReader(w.to_bytes())
        np.testing.assert_array_equal(read_block(r), block)

    @given(arrays(np.int64, (4, 4), elements=levels))
    @settings(max_examples=80, deadline=None)
    def test_block_bits_matches_written(self, block):
        w = BitWriter()
        write_block(w, block)
        assert block_bits(block[None])[0] == w.bit_count

    def test_zero_block_is_one_bit(self):
        z = np.zeros((1, 4, 4), dtype=np.int64)
        assert block_bits(z)[0] == 1  # ue(0)

    def test_denser_blocks_cost_more(self):
        sparse = np.zeros((4, 4), dtype=np.int64)
        sparse[0, 0] = 3
        dense = np.full((4, 4), 3, dtype=np.int64)
        assert block_bits(dense[None])[0] > block_bits(sparse[None])[0]

    def test_batch_bits(self, rng):
        blocks = rng.integers(-5, 6, (10, 4, 4)).astype(np.int64)
        bits = block_bits(blocks)
        assert bits.shape == (10,)
        for k in range(10):
            w = BitWriter()
            write_block(w, blocks[k])
            assert bits[k] == w.bit_count


class TestChromaDC:
    @given(arrays(np.int64, (2, 2), elements=levels))
    @settings(max_examples=60, deadline=None)
    def test_chroma_dc_roundtrip(self, dc):
        w = BitWriter()
        write_chroma_dc(w, dc)
        r = BitReader(w.to_bytes())
        np.testing.assert_array_equal(read_chroma_dc(r), dc)
