"""Partition-mode bookkeeping: tiling, aggregation matrices."""

import numpy as np
import pytest

from repro.codec.config import PARTITION_MODES
from repro.codec.partitions import (
    all_modes,
    get_mode,
    partition_sads,
    total_subpartitions,
)

EXPECTED_NPARTS = {
    (16, 16): 1,
    (16, 8): 2,
    (8, 16): 2,
    (8, 8): 4,
    (8, 4): 8,
    (4, 8): 8,
    (4, 4): 16,
}


class TestModes:
    @pytest.mark.parametrize("shape", PARTITION_MODES)
    def test_npart_counts(self, shape):
        assert get_mode(shape).nparts == EXPECTED_NPARTS[shape]

    def test_total_is_41(self):
        assert total_subpartitions() == 41

    @pytest.mark.parametrize("shape", PARTITION_MODES)
    def test_cells_partition_the_mb(self, shape):
        mode = get_mode(shape)
        # Each 4x4 cell belongs to exactly one sub-partition.
        col_sums = mode.cell_matrix.sum(axis=0)
        np.testing.assert_array_equal(col_sums, np.ones(16))

    @pytest.mark.parametrize("shape", PARTITION_MODES)
    def test_cells_per_partition(self, shape):
        mode = get_mode(shape)
        h, w = shape
        row_sums = mode.cell_matrix.sum(axis=1)
        np.testing.assert_array_equal(row_sums, np.full(mode.nparts, (h // 4) * (w // 4)))

    @pytest.mark.parametrize("shape", PARTITION_MODES)
    def test_origins_raster_order_and_disjoint(self, shape):
        mode = get_mode(shape)
        seen = set()
        for oy, ox in mode.origins:
            assert 0 <= oy < 16 and 0 <= ox < 16
            assert (oy, ox) not in seen
            seen.add((oy, ox))
        assert sorted(seen) == [tuple(o) for o in mode.origins]

    def test_unknown_shape_rejected(self):
        with pytest.raises(ValueError):
            get_mode((2, 2))

    def test_all_modes_respects_enabled_subset(self):
        modes = all_modes(((16, 16), (8, 8)))
        assert [m.shape for m in modes] == [(16, 16), (8, 8)]

    def test_mode_cached(self):
        assert get_mode((16, 16)) is get_mode((16, 16))


class TestAggregation:
    def test_16x16_sums_all_cells(self, rng):
        cells = rng.integers(0, 100, (4, 4)).astype(np.float64)
        got = partition_sads(cells, get_mode((16, 16)))
        assert got.shape == (1,)
        assert got[0] == cells.sum()

    def test_h16_w8_splits_left_right(self, rng):
        # Shapes are (height, width): (16, 8) = full height, half width.
        cells = rng.integers(0, 100, (4, 4)).astype(np.float64)
        got = partition_sads(cells, get_mode((16, 8)))
        assert got[0] == cells[:, :2].sum()
        assert got[1] == cells[:, 2:].sum()

    def test_h8_w16_splits_top_bottom(self, rng):
        cells = rng.integers(0, 100, (4, 4)).astype(np.float64)
        got = partition_sads(cells, get_mode((8, 16)))
        assert got[0] == cells[:2].sum()
        assert got[1] == cells[2:].sum()

    def test_4x4_identity(self, rng):
        cells = rng.integers(0, 100, (4, 4)).astype(np.float64)
        got = partition_sads(cells, get_mode((4, 4)))
        np.testing.assert_array_equal(got, cells.reshape(16))

    def test_batch_dimensions_preserved(self, rng):
        cells = rng.integers(0, 100, (3, 5, 4, 4)).astype(np.float64)
        got = partition_sads(cells, get_mode((8, 8)))
        assert got.shape == (3, 5, 4)
        assert got.sum() == pytest.approx(cells.sum())

    @pytest.mark.parametrize("shape", PARTITION_MODES)
    def test_partition_sads_conserve_total(self, rng, shape):
        cells = rng.integers(0, 100, (4, 4)).astype(np.float64)
        got = partition_sads(cells, get_mode(shape))
        assert got.sum() == pytest.approx(cells.sum())
