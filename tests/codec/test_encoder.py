"""Reference encoder: end-to-end IPPP behaviour."""

import numpy as np
import pytest

from repro.codec.config import CodecConfig
from repro.codec.encoder import ReferenceEncoder
from repro.codec.frames import YuvFrame
from repro.video.generator import SyntheticSequence


class TestGopStructure:
    def test_first_frame_intra_rest_inter(self, small_cfg, small_sequence):
        enc = ReferenceEncoder(small_cfg)
        out = enc.encode_sequence(small_sequence)
        assert out[0].is_intra
        assert all(not f.is_intra for f in out[1:])
        assert [f.index for f in out] == list(range(len(out)))

    def test_inter_frames_cheaper_than_intra(self, small_cfg, small_sequence):
        enc = ReferenceEncoder(small_cfg)
        out = enc.encode_sequence(small_sequence)
        for p in out[1:]:
            assert p.bits < out[0].bits

    def test_reset_restarts_gop(self, small_cfg, small_sequence):
        enc = ReferenceEncoder(small_cfg)
        enc.encode_frame(small_sequence[0])
        enc.encode_frame(small_sequence[1])
        enc.reset()
        again = enc.encode_frame(small_sequence[0])
        assert again.is_intra and again.index == 0

    def test_frame_shape_checked(self, small_cfg):
        enc = ReferenceEncoder(small_cfg)
        with pytest.raises(ValueError):
            enc.encode_frame(YuvFrame.blank(64, 64))


class TestRateDistortion:
    def test_static_scene_nearly_free(self, small_cfg):
        """Identical frames ⇒ P frames cost almost nothing."""
        f = SyntheticSequence(
            width=small_cfg.width, height=small_cfg.height, seed=5, noise_sigma=0
        ).frame(0)
        enc = ReferenceEncoder(small_cfg)
        intra = enc.encode_frame(f)
        p = enc.encode_frame(f.copy())
        # The P frame still pays MB headers and codes the tiny residual
        # between the source and the quantized+deblocked reference.
        assert p.bits < intra.bits / 8
        assert p.psnr["y"] > 35

    def test_psnr_reasonable(self, small_cfg, small_sequence):
        enc = ReferenceEncoder(small_cfg)
        for ef in enc.encode_sequence(small_sequence):
            assert ef.psnr["y"] > 30.0
            assert ef.psnr["u"] > 30.0

    def test_deterministic(self, small_cfg, small_sequence):
        a = ReferenceEncoder(small_cfg).encode_sequence(small_sequence)
        b = ReferenceEncoder(small_cfg).encode_sequence(small_sequence)
        for fa, fb in zip(a, b, strict=True):
            assert fa.bits == fb.bits
            np.testing.assert_array_equal(fa.recon.y, fb.recon.y)

    def test_mode_histogram_counts_all_mbs(self, small_cfg, small_sequence):
        enc = ReferenceEncoder(small_cfg)
        out = enc.encode_sequence(small_sequence)
        n_mbs = small_cfg.mb_rows * small_cfg.mb_cols
        for p in out[1:]:
            assert sum(p.mode_histogram.values()) == n_mbs

    def test_lower_qp_more_bits_better_quality(self, small_sequence):
        hi_q = CodecConfig(width=128, height=96, search_range=8, qp_i=20, qp_p=21)
        lo_q = CodecConfig(width=128, height=96, search_range=8, qp_i=38, qp_p=39)
        out_hi = ReferenceEncoder(hi_q).encode_sequence(small_sequence[:3])
        out_lo = ReferenceEncoder(lo_q).encode_sequence(small_sequence[:3])
        assert sum(f.bits for f in out_hi) > sum(f.bits for f in out_lo)
        assert out_hi[-1].psnr["y"] > out_lo[-1].psnr["y"]


class TestMultiReference:
    def test_multi_ref_never_hurts_distortion(self):
        """With periodic content, 2 RFs should beat 1 RF on bits or match."""
        cfg1 = CodecConfig(width=128, height=96, search_range=8, num_ref_frames=1)
        cfg2 = CodecConfig(width=128, height=96, search_range=8, num_ref_frames=2)
        # Alternating two scenes: frame i matches frame i-2 exactly.
        a = SyntheticSequence(width=128, height=96, seed=1, noise_sigma=0).frame(0)
        b = SyntheticSequence(width=128, height=96, seed=2, noise_sigma=0).frame(0)
        seq = [a, b, a.copy(), b.copy(), a.copy()]
        bits1 = sum(f.bits for f in ReferenceEncoder(cfg1).encode_sequence(seq)[2:])
        bits2 = sum(f.bits for f in ReferenceEncoder(cfg2).encode_sequence(seq)[2:])
        assert bits2 < bits1 / 2  # 2-RF encoder finds the exact repeat

    def test_sf_store_tracks_refs(self, small_cfg, small_sequence):
        enc = ReferenceEncoder(small_cfg)
        enc.encode_sequence(small_sequence)
        assert len(enc.store.frames) == min(
            small_cfg.num_ref_frames, len(small_sequence)
        )
