"""Decoder robustness: corrupt or truncated input must fail cleanly.

A production decoder never crashes with an unhandled index error or
silently returns garbage state on malformed data — it raises. We fuzz the
packet boundary with random bytes, truncations and bit flips.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec.config import CodecConfig
from repro.codec.decoder import SequenceDecoder
from repro.codec.stream import StreamEncoder
from repro.video.generator import moving_objects_sequence

CFG = CodecConfig(width=64, height=48, search_range=4, num_ref_frames=1)


def fresh_pair():
    enc = StreamEncoder(CFG)
    dec = SequenceDecoder.from_header(enc.sequence_header())
    return enc, dec


class TestCorruptInput:
    @given(st.binary(min_size=0, max_size=200))
    @settings(max_examples=80, deadline=None)
    def test_random_bytes_never_crash_unexpectedly(self, blob):
        _, dec = fresh_pair()
        try:
            dec.decode_packet(blob)
        except (ValueError, EOFError):
            pass  # clean rejection is the contract

    def test_truncated_packet_rejected(self):
        enc, dec = fresh_pair()
        clip = moving_objects_sequence(width=64, height=48, count=2, seed=1)
        _, packet = enc.encode_frame(clip[0])
        with pytest.raises((ValueError, EOFError)):
            dec.decode_packet(packet[: len(packet) // 2])

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_bit_flips_never_crash_unexpectedly(self, flip_pos):
        enc, dec = fresh_pair()
        clip = moving_objects_sequence(width=64, height=48, count=1, seed=2)
        _, packet = enc.encode_frame(clip[0])
        data = bytearray(packet)
        pos = flip_pos % (len(data) * 8)
        data[pos // 8] ^= 1 << (7 - pos % 8)
        try:
            dec.decode_packet(bytes(data))
        except (ValueError, EOFError):
            pass  # corruption detected

    def test_bad_header_rejected(self):
        with pytest.raises(ValueError):
            SequenceDecoder.from_header(b"\xff" * 32)

    def test_decoder_state_survives_rejection(self):
        """A rejected packet must not poison subsequent decoding."""
        enc, dec = fresh_pair()
        clip = moving_objects_sequence(width=64, height=48, count=3, seed=3)
        stats0, p0 = enc.encode_frame(clip[0])
        rec0 = dec.decode_packet(p0)
        np.testing.assert_array_equal(stats0.recon.y, rec0.y)
        with pytest.raises((ValueError, EOFError)):
            dec.decode_packet(b"\x00\x01\x02")
        # Note: after a failed *inter* packet mid-parse the reference
        # window may be ahead by one SF; a failed parse this early leaves
        # state intact and the next good packet still decodes.
        stats1, p1 = enc.encode_frame(clip[1])
        try:
            rec1 = dec.decode_packet(p1)
            np.testing.assert_array_equal(stats1.recon.y, rec1.y)
        except RuntimeError:
            pytest.skip("reference window advanced by failed parse")
