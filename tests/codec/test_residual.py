"""Residual plane coding: TQ→TQ⁻¹ bounds, cnz grids, exact rate accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec.bitstream import BitWriter
from repro.codec.entropy import write_block
from repro.codec.quant import chroma_qp, quant_step
from repro.codec.residual import (
    code_chroma_plane,
    code_luma_plane,
    reconstruct,
)


class TestLumaPlane:
    @given(st.integers(min_value=0, max_value=51))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_bounded(self, qp):
        rng = np.random.default_rng(qp)
        res = rng.integers(-128, 129, (32, 32)).astype(np.int64)
        coded = code_luma_plane(res, qp, intra=False)
        assert np.abs(coded.recon_residual - res).max() <= 2.5 * quant_step(qp) + 2

    def test_zero_residual(self):
        coded = code_luma_plane(np.zeros((16, 16), dtype=np.int64), 28, False)
        assert (coded.recon_residual == 0).all()
        assert not coded.cnz4.any()
        assert coded.bits == 16  # one ue(0) bit per 4x4 block

    def test_cnz_marks_exactly_nonzero_blocks(self):
        res = np.zeros((16, 16), dtype=np.int64)
        res[4:8, 8:12] = 120  # block (1, 2)
        coded = code_luma_plane(res, 20, False)
        want = np.zeros((4, 4), dtype=bool)
        want[1, 2] = True
        np.testing.assert_array_equal(coded.cnz4, want)

    def test_bits_match_actual_writing(self, rng):
        res = rng.integers(-60, 61, (16, 32)).astype(np.int64)
        coded = code_luma_plane(res, 24, False)
        w = BitWriter()
        for block in coded.levels:
            write_block(w, block)
        assert coded.bits == w.bit_count

    def test_levels_raster_order(self):
        res = np.zeros((8, 8), dtype=np.int64)
        res[0:4, 4:8] = 90
        coded = code_luma_plane(res, 20, False)
        assert (coded.levels[1] != 0).any()
        assert (coded.levels[0] == 0).all()


class TestChromaPlane:
    @given(st.integers(min_value=0, max_value=51))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_bounded(self, qp):
        rng = np.random.default_rng(100 + qp)
        res = rng.integers(-100, 101, (16, 24)).astype(np.int64)
        coded = code_chroma_plane(res, qp, intra=False)
        bound = 2.5 * quant_step(chroma_qp(qp)) + 4
        assert np.abs(coded.recon_residual - res).max() <= bound

    def test_constant_plane_exact_dc_path(self):
        """A pure-DC chroma residual survives the Hadamard side path."""
        res = np.full((16, 16), 50, dtype=np.int64)
        coded = code_chroma_plane(res, 0, intra=False)
        assert np.abs(coded.recon_residual - 50).max() <= 1

    def test_ac_levels_have_zero_dc(self, rng):
        res = rng.integers(-90, 91, (16, 16)).astype(np.int64)
        coded = code_chroma_plane(res, 28, intra=False)
        assert (coded.ac_levels[:, 0, 0] == 0).all()

    def test_dc_levels_one_group_per_8x8(self, rng):
        # Each MB contributes one 8x8 chroma region with one 2x2 DC group.
        res = rng.integers(-90, 91, (16, 32)).astype(np.int64)
        coded = code_chroma_plane(res, 28, intra=False)
        assert coded.dc_levels.shape == ((16 // 8) * (32 // 8), 2, 2)

    def test_alignment_required(self):
        with pytest.raises(ValueError):
            code_chroma_plane(np.zeros((12, 16), dtype=np.int64), 28, False)


class TestReconstruct:
    def test_clips_to_uint8(self):
        pred = np.array([[250, 5]], dtype=np.uint8)
        res = np.array([[20, -20]], dtype=np.int32)
        out = reconstruct(pred, res)
        assert out.dtype == np.uint8
        assert out[0, 0] == 255 and out[0, 1] == 0

    def test_additive(self):
        pred = np.full((4, 4), 100, dtype=np.uint8)
        res = np.full((4, 4), 17, dtype=np.int32)
        assert (reconstruct(pred, res) == 117).all()
