"""Bitstream serialization and standalone decoder: closed-loop properties."""

import numpy as np
import pytest

from repro.codec.bitstream import BitReader, BitWriter
from repro.codec.config import CodecConfig
from repro.codec.decoder import SequenceDecoder
from repro.codec.encoder import ReferenceEncoder
from repro.codec.stream import StreamEncoder, read_stream, write_stream
from repro.codec.syntax import read_sequence_header, write_sequence_header
from repro.video.generator import SyntheticSequence


@pytest.fixture(scope="module")
def clip():
    return SyntheticSequence(width=128, height=96, seed=17, noise_sigma=1.5).frames(6)


@pytest.fixture(scope="module")
def cfg():
    return CodecConfig(width=128, height=96, search_range=8, num_ref_frames=2)


class TestSequenceHeader:
    def test_roundtrip_default(self):
        cfg = CodecConfig(width=1920, height=1088, search_range=16,
                          num_ref_frames=4)
        w = BitWriter()
        write_sequence_header(w, cfg)
        back = read_sequence_header(BitReader(w.to_bytes()))
        assert back.width == cfg.width and back.height == cfg.height
        assert back.qp_i == cfg.qp_i and back.qp_p == cfg.qp_p
        assert back.num_ref_frames == cfg.num_ref_frames
        assert back.search_range == cfg.search_range
        assert back.enabled_partitions == cfg.enabled_partitions

    def test_roundtrip_partition_subset(self):
        cfg = CodecConfig(width=64, height=48,
                          enabled_partitions=((16, 16), (4, 4)))
        w = BitWriter()
        write_sequence_header(w, cfg)
        back = read_sequence_header(BitReader(w.to_bytes()))
        assert back.enabled_partitions == ((16, 16), (4, 4))

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            read_sequence_header(BitReader(b"\x00" * 16))


class TestClosedLoop:
    def test_decoder_matches_encoder_recon(self, cfg, clip):
        """Drift-free: every decoded frame == the encoder's reconstruction."""
        enc = StreamEncoder(cfg)
        dec = SequenceDecoder.from_header(enc.sequence_header())
        for f in clip:
            stats, packet = enc.encode_frame(f)
            rec = dec.decode_packet(packet)
            np.testing.assert_array_equal(stats.recon.y, rec.y)
            np.testing.assert_array_equal(stats.recon.u, rec.u)
            np.testing.assert_array_equal(stats.recon.v, rec.v)

    def test_long_gop_no_drift(self):
        """Drift would accumulate: check a longer GOP at a coarser QP."""
        cfg = CodecConfig(width=64, height=64, search_range=4,
                          num_ref_frames=1, qp_i=35, qp_p=36)
        clip = SyntheticSequence(width=64, height=64, seed=5).frames(12)
        enc = StreamEncoder(cfg)
        dec = SequenceDecoder.from_header(enc.sequence_header())
        for f in clip:
            stats, packet = enc.encode_frame(f)
            rec = dec.decode_packet(packet)
            np.testing.assert_array_equal(stats.recon.y, rec.y)

    def test_packet_size_tracks_bit_estimate(self, cfg, clip):
        """The serialized size must match the rate accounting closely."""
        enc = StreamEncoder(cfg)
        for f in clip:
            stats, packet = enc.encode_frame(f)
            est_bytes = stats.bits / 8
            assert abs(len(packet) - est_bytes) < 0.15 * est_bytes + 64

    def test_multi_ref_stream(self):
        cfg = CodecConfig(width=128, height=96, search_range=8,
                          num_ref_frames=3)
        clip = SyntheticSequence(width=128, height=96, seed=9).frames(6)
        enc = StreamEncoder(cfg)
        dec = SequenceDecoder.from_header(enc.sequence_header())
        for f in clip:
            stats, packet = enc.encode_frame(f)
            rec = dec.decode_packet(packet)
            np.testing.assert_array_equal(stats.recon.y, rec.y)

    def test_reset_starts_new_gop(self, cfg, clip):
        enc = StreamEncoder(cfg)
        enc.encode_frame(clip[0])
        enc.encode_frame(clip[1])
        enc.reset()
        stats, _ = enc.encode_frame(clip[2])
        assert stats.is_intra

    def test_reference_encoder_without_syntax_has_none(self, cfg, clip):
        enc = ReferenceEncoder(cfg)  # keep_syntax defaults off
        out = enc.encode_frame(clip[0])
        assert out.syntax is None


class TestContainer:
    def test_file_roundtrip(self, tmp_path, cfg, clip):
        path = tmp_path / "clip.fevs"
        stats = write_stream(path, clip, cfg)
        cfg_back, frames = read_stream(path)
        assert cfg_back.width == cfg.width
        assert len(frames) == len(clip)
        for s, f in zip(stats, frames, strict=True):
            np.testing.assert_array_equal(s.recon.y, f.y)

    def test_compression_actually_happens(self, tmp_path, cfg, clip):
        from repro.video.yuv import frame_bytes

        path = tmp_path / "clip.fevs"
        write_stream(path, clip, cfg)
        raw = len(clip) * frame_bytes(cfg.width, cfg.height)
        assert path.stat().st_size < raw / 4

    def test_truncated_container_detected(self, tmp_path, cfg, clip):
        path = tmp_path / "clip.fevs"
        write_stream(path, clip[:2], cfg)
        data = path.read_bytes()
        (tmp_path / "cut.fevs").write_bytes(data[: len(data) - 10])
        with pytest.raises(ValueError, match="truncated"):
            read_stream(tmp_path / "cut.fevs")

    def test_decoded_quality_matches_encoder_psnr(self, tmp_path, cfg, clip):
        from repro.codec.quality import psnr

        path = tmp_path / "clip.fevs"
        stats = write_stream(path, clip, cfg)
        _, frames = read_stream(path)
        for src, s, rec in zip(clip, stats, frames, strict=True):
            assert psnr(src.y, rec.y) == pytest.approx(s.psnr["y"], abs=1e-9)
