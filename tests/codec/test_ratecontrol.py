"""Rate control: buffer model and closed-loop bitrate tracking."""

import pytest

from repro.codec.config import CodecConfig
from repro.codec.ratecontrol import RateControlledEncoder, RateController
from repro.video.generator import SyntheticSequence


class TestController:
    def test_on_budget_keeps_qp(self):
        rc = RateController(target_bps=100_000, fps=25, initial_qp=30)
        assert rc.update(int(rc.frame_budget)) == 30

    def test_overshoot_raises_qp(self):
        rc = RateController(target_bps=100_000, fps=25, initial_qp=30)
        qp = rc.update(int(3 * rc.frame_budget))
        assert qp > 30

    def test_undershoot_lowers_qp(self):
        rc = RateController(target_bps=100_000, fps=25, initial_qp=30)
        qp = rc.update(0)
        assert qp < 30

    def test_step_clamped(self):
        rc = RateController(target_bps=100_000, fps=25, initial_qp=30, max_step=2)
        qp = rc.update(int(100 * rc.frame_budget))
        assert qp == 32

    def test_qp_range_clamped(self):
        rc = RateController(
            target_bps=100_000, fps=25, initial_qp=48, qp_max=48
        )
        assert rc.update(int(10 * rc.frame_budget)) == 48

    def test_buffer_windup_bounded(self):
        rc = RateController(
            target_bps=100_000, fps=25, initial_qp=30, buffer_frames=4
        )
        rc.update(int(100 * rc.frame_budget))  # giant I frame
        assert abs(rc.buffer_fullness) <= 4.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RateController(target_bps=0, fps=25)
        with pytest.raises(ValueError):
            RateController(target_bps=1000, fps=25, qp_min=40, qp_max=30)
        rc = RateController(target_bps=1000, fps=25)
        with pytest.raises(ValueError):
            rc.update(-1)


class TestClosedLoop:
    @pytest.fixture(scope="class")
    def clip(self):
        return SyntheticSequence(
            width=128, height=96, seed=19, noise_sigma=2.0
        ).frames(20)

    def test_converges_to_target(self, clip):
        cfg = CodecConfig(width=128, height=96, search_range=8)
        target = 220_000.0  # bps at 25 fps
        enc = RateControlledEncoder(cfg, target_bps=target, fps=25.0)
        out = enc.encode_sequence(clip)
        # Judge steady state (skip I frame + settle phase).
        steady = out[8:]
        steady_bps = sum(f.bits for f in steady) / len(steady) * 25.0
        assert steady_bps == pytest.approx(target, rel=0.35)

    def test_qp_rises_after_intra(self, clip):
        cfg = CodecConfig(width=128, height=96, search_range=8)
        enc = RateControlledEncoder(cfg, target_bps=150_000, fps=25.0)
        enc.encode_sequence(clip[:6])
        # The expensive I frame must push QP up within the clamp.
        assert enc.qp_history[1] > enc.qp_history[0]

    def test_tighter_budget_means_higher_qp(self, clip):
        cfg = CodecConfig(width=128, height=96, search_range=8)
        rich = RateControlledEncoder(cfg, target_bps=600_000, fps=25.0)
        poor = RateControlledEncoder(cfg, target_bps=80_000, fps=25.0)
        rich.encode_sequence(clip[:12])
        poor.encode_sequence(clip[:12])
        assert poor.qp_history[-1] > rich.qp_history[-1]

    def test_quality_follows_budget(self, clip):
        cfg = CodecConfig(width=128, height=96, search_range=8)
        rich = RateControlledEncoder(cfg, target_bps=600_000, fps=25.0)
        poor = RateControlledEncoder(cfg, target_bps=80_000, fps=25.0)
        rich_out = rich.encode_sequence(clip[:12])
        poor_out = poor.encode_sequence(clip[:12])
        assert rich_out[-1].psnr["y"] > poor_out[-1].psnr["y"]

    def test_gop_refresh_supported(self, clip):
        cfg = CodecConfig(width=128, height=96, search_range=8)
        enc = RateControlledEncoder(cfg, target_bps=200_000, fps=25.0,
                                    gop_size=6)
        out = enc.encode_sequence(clip[:13])
        assert [f.is_intra for f in out].count(True) == 3  # frames 0, 6, 12
