"""Diamond-search fast ME: correctness and the content-dependence property."""

import numpy as np
import pytest

from repro.codec.config import CodecConfig
from repro.codec.fastme import diamond_search_rows
from repro.codec.me import motion_estimate_rows


@pytest.fixture
def cfg():
    return CodecConfig(width=64, height=64, search_range=8, num_ref_frames=1)


class TestCorrectness:
    def test_zero_motion_found(self, rng, cfg):
        ref = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        field, stats = diamond_search_rows(ref, [ref], 0, 4, cfg)
        assert (field.sads[(16, 16)] == 0).all()
        assert (field.mvs[(16, 16)] == 0).all()

    def test_small_translation_found_on_natural_content(self, cfg):
        """DS descends SAD gradients — needs spatially-correlated content
        (on white noise there is no gradient, and getting stuck in local
        minima is expected DS behaviour)."""
        yy, xx = np.mgrid[0:64, 0:64]
        ref = (128 + 60 * np.sin(xx / 5.0) + 50 * np.cos(yy / 7.0)).astype(np.uint8)
        cur = np.roll(ref, shift=(2, -1), axis=(0, 1))
        field, _ = diamond_search_rows(cur, [ref], 0, 4, cfg)
        inner = field.mvs[(16, 16)][1:-1, 1:-1, 0]
        assert (inner[..., 0] == -2).all()
        assert (inner[..., 1] == 1).all()

    def test_never_better_than_full_search(self, rng, cfg):
        """DS is a heuristic: its SAD ≥ FSBM's optimal SAD, always."""
        ref = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        cur = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        ds, _ = diamond_search_rows(cur, [ref], 0, 4, cfg)
        fs = motion_estimate_rows(cur, [ref], 0, 4, cfg)
        for shape in fs.mode_shapes:
            assert (ds.sads[shape] >= fs.sads[shape]).all()

    def test_mvs_bounded_by_search_range(self, rng, cfg):
        ref = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        cur = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        ds, _ = diamond_search_rows(cur, [ref], 0, 4, cfg)
        for shape in ds.mode_shapes:
            assert (np.abs(ds.mvs[shape]) <= cfg.search_range).all()

    def test_field_contract_matches_fsbm(self, rng, cfg):
        """The output plugs into SME exactly like the FSBM field."""
        from repro.codec.interpolation import interpolate_plane
        from repro.codec.sme import subpel_refine_rows

        ref = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        cur = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        ds, _ = diamond_search_rows(cur, [ref], 0, 4, cfg)
        sme = subpel_refine_rows(cur, [interpolate_plane(ref)], ds, 0, 4, cfg)
        assert sme.qmvs[(16, 16)].shape == (4, 4, 1, 2)


class TestWorkloadProperty:
    def test_far_cheaper_than_full_search(self, rng, cfg):
        ref = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        cur = np.roll(ref, shift=(1, 1), axis=(0, 1))
        _, stats = diamond_search_rows(cur, [ref], 0, 4, cfg)
        fsbm_cands = 4 * 4 * (2 * cfg.search_range + 1) ** 2  # 16 MBs
        assert stats.total < fsbm_cands / 10

    def test_content_dependent_load(self, cfg):
        """The paper's rationale for FSBM: DS cost varies with motion.

        A frame where some rows moved far and others are static must show
        per-row workload variation, whereas FSBM's is exactly zero.
        """
        rng = np.random.default_rng(4)
        ref = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        cur = ref.copy()
        cur[0:32] = np.roll(ref[0:32], shift=(0, 7), axis=(0, 1))  # big motion
        _, stats = diamond_search_rows(cur, [ref], 0, 4, cfg)
        assert stats.row_variation() > 0.1
        assert stats.candidates_per_row[0] > stats.candidates_per_row[3]

    def test_stats_accounting(self, rng, cfg):
        ref = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        _, stats = diamond_search_rows(ref, [ref], 0, 4, cfg)
        assert len(stats.candidates_per_row) == 4
        assert stats.total == sum(stats.candidates_per_row)
        # Static content: exactly LDSP(9) + SDSP(4) per MB.
        assert all(c == 4 * 13 for c in stats.candidates_per_row)

    def test_zero_rows(self, rng, cfg):
        ref = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        field, stats = diamond_search_rows(ref, [ref], 1, 0, cfg)
        assert field.nrows == 0
        assert stats.total == 0
