"""Slices: geometry, prediction barriers, slice-parallel deblocking."""

import numpy as np
import pytest

from repro.codec.config import CodecConfig
from repro.codec.decoder import SequenceDecoder
from repro.codec.encoder import ReferenceEncoder
from repro.codec.slices import (
    dbl_skip_luma_rows,
    slice_bounds,
    slice_start_luma_rows,
    slice_start_mb_rows,
)
from repro.codec.stream import StreamEncoder
from repro.video.generator import SyntheticSequence


class TestGeometry:
    def test_bounds_cover_frame(self):
        for rows, n in ((6, 1), (6, 3), (68, 4), (7, 3)):
            bounds = slice_bounds(rows, n)
            assert bounds[0][0] == 0 and bounds[-1][1] == rows
            for (a0, a1), (b0, b1) in zip(bounds, bounds[1:], strict=False):
                assert a1 == b0
            sizes = [b - a for a, b in bounds]
            assert max(sizes) - min(sizes) <= 1

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            slice_bounds(6, 0)
        with pytest.raises(ValueError):
            slice_bounds(6, 7)

    def test_start_rows(self):
        cfg = CodecConfig(width=128, height=96, num_slices=3)
        assert slice_start_mb_rows(cfg) == frozenset({0, 2, 4})
        assert slice_start_luma_rows(cfg) == frozenset({0, 32, 64})

    def test_dbl_skip_rows(self):
        on = CodecConfig(width=128, height=96, num_slices=3)
        assert dbl_skip_luma_rows(on) == frozenset()
        off = CodecConfig(width=128, height=96, num_slices=3,
                          deblock_across_slices=False)
        assert dbl_skip_luma_rows(off) == frozenset({32, 64})

    def test_config_validation(self):
        with pytest.raises(ValueError, match="num_slices"):
            CodecConfig(width=128, height=96, num_slices=7)


class TestSliceIndependence:
    def test_intra_slices_decode_from_top_of_slice(self):
        """The first MB row of every slice predicts without top samples —
        changing content *above* a slice must not change intra prediction
        decisions at the slice start (independence)."""
        cfg = CodecConfig(width=128, height=96, search_range=8, num_slices=3)
        seq = SyntheticSequence(width=128, height=96, seed=13, noise_sigma=0)
        a = seq.frame(0)
        b = a.copy()
        b.y[:16] = 255 - b.y[:16]  # mangle slice 0 content only
        from repro.codec.intra import intra_encode_frame

        ra = intra_encode_frame(a, cfg)
        rb = intra_encode_frame(b, cfg)
        # Slice 1 starts at MB row 2 (pixel 32): its first-row predictions
        # cannot see slice 0, so identical content ⇒ identical recon there.
        np.testing.assert_array_equal(ra.recon.y[32:48], rb.recon.y[32:48])

    def test_single_slice_first_rows_depend_on_above(self):
        """Control: without slices the same change does propagate."""
        cfg = CodecConfig(width=128, height=96, search_range=8, num_slices=1)
        seq = SyntheticSequence(width=128, height=96, seed=13, noise_sigma=0)
        a = seq.frame(0)
        b = a.copy()
        b.y[:16] = 255 - b.y[:16]
        from repro.codec.intra import intra_encode_frame

        ra = intra_encode_frame(a, cfg)
        rb = intra_encode_frame(b, cfg)
        assert not np.array_equal(ra.recon.y[32:48], rb.recon.y[32:48])


class TestSliceParallelDbl:
    def test_deblock_skip_isolates_slices(self):
        """With cross-slice filtering off, each slice's DBL output depends
        only on that slice's samples — the property that makes the filter
        slice-parallel."""
        import numpy as np

        from repro.codec.deblock import BlockInfo, deblock_plane

        rng = np.random.default_rng(3)
        plane = rng.integers(0, 256, (96, 64), dtype=np.uint8)
        info = BlockInfo(
            mv=np.zeros((24, 16, 2), dtype=np.int32),
            ref=np.zeros((24, 16), dtype=np.int32),
            cnz=np.ones((24, 16), dtype=bool),
            intra=np.zeros((24, 16), dtype=bool),
        )
        skip = frozenset({32, 64})
        whole = deblock_plane(plane, info, qp=36, skip_luma_rows=skip)
        # Filter each slice separately and stitch.
        parts = []
        for a, b in ((0, 32), (32, 64), (64, 96)):
            sub_info = BlockInfo(
                mv=info.mv[a // 4 : b // 4],
                ref=info.ref[a // 4 : b // 4],
                cnz=info.cnz[a // 4 : b // 4],
                intra=info.intra[a // 4 : b // 4],
            )
            parts.append(deblock_plane(plane[a:b], sub_info, qp=36))
        np.testing.assert_array_equal(whole, np.vstack(parts))

    def test_cross_slice_filtering_differs(self):
        import numpy as np

        from repro.codec.deblock import BlockInfo, deblock_plane

        # A filterable step exactly at the slice boundary (row 32): small
        # enough for |p0-q0| < alpha at QP 36, with coded coefficients so
        # bS = 2.
        plane = np.full((96, 64), 80, dtype=np.uint8)
        plane[32:] = 95
        info = BlockInfo(
            mv=np.zeros((24, 16, 2), dtype=np.int32),
            ref=np.zeros((24, 16), dtype=np.int32),
            cnz=np.ones((24, 16), dtype=bool),
            intra=np.zeros((24, 16), dtype=bool),
        )
        on = deblock_plane(plane, info, qp=36)
        off = deblock_plane(plane, info, qp=36,
                            skip_luma_rows=frozenset({32, 64}))
        assert not np.array_equal(on, off)
        # The skipped edge keeps the hard step; the filtered one smooths it.
        assert abs(int(off[32, 0]) - int(off[31, 0])) == 15
        assert abs(int(on[32, 0]) - int(on[31, 0])) < 15


class TestEndToEnd:
    @pytest.mark.parametrize("slices,across", [(2, True), (3, False)])
    def test_closed_loop(self, slices, across):
        cfg = CodecConfig(width=128, height=96, search_range=8,
                          num_ref_frames=2, num_slices=slices,
                          deblock_across_slices=across)
        clip = SyntheticSequence(width=128, height=96, seed=3).frames(4)
        enc = StreamEncoder(cfg)
        dec = SequenceDecoder.from_header(enc.sequence_header())
        assert dec.cfg.num_slices == slices
        assert dec.cfg.deblock_across_slices == across
        for f in clip:
            stats, packet = enc.encode_frame(f)
            rec = dec.decode_packet(packet)
            np.testing.assert_array_equal(stats.recon.y, rec.y)
            np.testing.assert_array_equal(stats.recon.v, rec.v)

    def test_slices_cost_bits(self):
        """Restricting prediction must cost bits, but only a little."""
        clip = SyntheticSequence(width=128, height=96, seed=3).frames(4)
        bits = {}
        for n in (1, 3):
            cfg = CodecConfig(width=128, height=96, search_range=8,
                              num_slices=n)
            out = ReferenceEncoder(cfg).encode_sequence(clip)
            bits[n] = sum(f.bits for f in out)
        assert bits[3] >= bits[1]
        assert bits[3] < 1.15 * bits[1]

    def test_collaborative_bit_exact_with_slices(self):
        from repro.core.config import FrameworkConfig
        from repro.core.framework import FevesFramework
        from repro.hw.presets import get_platform

        cfg = CodecConfig(width=128, height=96, search_range=8, num_slices=3,
                          deblock_across_slices=False)
        clip = SyntheticSequence(width=128, height=96, seed=3).frames(4)
        ref = ReferenceEncoder(cfg).encode_sequence(clip)
        fw = FevesFramework(get_platform("SysNFF"), cfg,
                            FrameworkConfig(compute="real"))
        out = fw.encode(clip)
        for r, o in zip(ref, out, strict=True):
            assert r.bits == o.encoded.bits
            np.testing.assert_array_equal(r.recon.y, o.encoded.recon.y)
