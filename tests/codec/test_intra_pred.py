"""Intra prediction modes (V/H/DC/Plane) and mode decision."""

import numpy as np
import pytest

from repro.codec.intra_pred import (
    MODE_DC,
    MODE_H,
    MODE_PLANE,
    MODE_V,
    available_modes,
    choose_mode,
    predict_block,
)


def make_recon(fill=100):
    return np.full((64, 64), fill, dtype=np.uint8)


class TestAvailability:
    def test_corner_block_dc_only(self):
        assert available_modes(False, False) == [MODE_DC]

    def test_top_row_block(self):
        assert set(available_modes(True, False)) == {MODE_DC, MODE_V}

    def test_left_col_block(self):
        assert set(available_modes(False, True)) == {MODE_DC, MODE_H}

    def test_interior_all_modes(self):
        assert set(available_modes(True, True)) == {
            MODE_DC, MODE_V, MODE_H, MODE_PLANE
        }


class TestPredictions:
    def test_vertical_copies_top_row(self):
        recon = make_recon()
        recon[15, 16:32] = np.arange(16, dtype=np.uint8)
        pred = predict_block(recon, 16, 16, 16, MODE_V)
        for y in range(16):
            np.testing.assert_array_equal(pred[y], np.arange(16))

    def test_horizontal_copies_left_col(self):
        recon = make_recon()
        recon[16:32, 15] = np.arange(16, dtype=np.uint8)
        pred = predict_block(recon, 16, 16, 16, MODE_H)
        for x in range(16):
            np.testing.assert_array_equal(pred[:, x], np.arange(16))

    def test_dc_no_neighbours_is_128(self):
        pred = predict_block(make_recon(), 0, 0, 16, MODE_DC)
        assert (pred == 128).all()

    def test_dc_averages_neighbours(self):
        recon = make_recon(0)
        recon[15, 16:32] = 100
        recon[16:32, 15] = 50
        pred = predict_block(recon, 16, 16, 16, MODE_DC)
        assert (pred == 75).all()

    def test_plane_reproduces_linear_gradient(self):
        """On a plane-consistent gradient the Plane mode is near-exact."""
        yy, xx = np.mgrid[0:64, 0:64]
        recon = np.clip(40 + 2 * xx + yy, 0, 255).astype(np.uint8)
        pred = predict_block(recon, 16, 16, 16, MODE_PLANE)
        truth = recon[16:32, 16:32].astype(np.int64)
        assert np.abs(pred - truth).max() <= 2

    def test_plane_beats_dc_on_gradient(self):
        yy, xx = np.mgrid[0:64, 0:64]
        recon = np.clip(40 + 2 * xx + yy, 0, 255).astype(np.uint8)
        truth = recon[16:32, 16:32].astype(np.int64)
        plane = predict_block(recon, 16, 16, 16, MODE_PLANE)
        dc = predict_block(recon, 16, 16, 16, MODE_DC)
        assert np.abs(plane - truth).sum() < np.abs(dc - truth).sum()

    def test_unavailable_mode_raises(self):
        recon = make_recon()
        with pytest.raises(ValueError):
            predict_block(recon, 0, 16, 16, MODE_V)  # no top row
        with pytest.raises(ValueError):
            predict_block(recon, 16, 0, 16, MODE_H)  # no left col
        with pytest.raises(ValueError):
            predict_block(recon, 0, 0, 16, MODE_PLANE)

    def test_chroma_size_8(self):
        recon = np.full((32, 32), 60, dtype=np.uint8)
        pred = predict_block(recon, 8, 8, 8, MODE_PLANE)
        assert pred.shape == (8, 8)
        assert (pred == 60).all()  # flat content → flat plane

    def test_outputs_in_pixel_range(self, rng):
        recon = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        for mode in (MODE_V, MODE_H, MODE_DC, MODE_PLANE):
            pred = predict_block(recon, 16, 16, 16, mode)
            assert pred.min() >= 0 and pred.max() <= 255


class TestModeDecision:
    def test_picks_vertical_for_vertical_stripes(self):
        recon = make_recon()
        stripes = (np.arange(16) % 2 * 120 + 40).astype(np.uint8)
        recon[15, 16:32] = stripes
        cur = np.broadcast_to(stripes, (16, 16)).copy()
        mode, pred = choose_mode(cur, recon, 16, 16, 16, lam=10.0)
        assert mode == MODE_V
        np.testing.assert_array_equal(pred[0], stripes)

    def test_picks_horizontal_for_horizontal_stripes(self):
        recon = make_recon()
        stripes = (np.arange(16) % 2 * 120 + 40).astype(np.uint8)
        recon[16:32, 15] = stripes
        cur = np.broadcast_to(stripes[:, None], (16, 16)).copy()
        mode, _ = choose_mode(cur, recon, 16, 16, 16, lam=10.0)
        assert mode == MODE_H

    def test_flat_content_prefers_cheapest_exact_mode(self):
        # All modes predict flat content exactly; the rate term picks the
        # shortest Exp-Golomb code, i.e. mode 0 (V).
        recon = make_recon(90)
        cur = np.full((16, 16), 90, dtype=np.uint8)
        mode, pred = choose_mode(cur, recon, 16, 16, 16, lam=10.0)
        assert mode == MODE_V
        assert (pred == 90).all()

    def test_corner_block_forced_dc(self):
        cur = np.full((16, 16), 33, dtype=np.uint8)
        mode, _ = choose_mode(cur, make_recon(), 0, 0, 16, lam=1.0)
        assert mode == MODE_DC


class TestEndToEnd:
    def test_modes_improve_intra_quality_on_gradients(self):
        """vs DC-only the full mode set must cut I-frame bits on gradient
        content (the whole point of directional prediction)."""
        from repro.codec.config import CodecConfig
        from repro.codec.frames import YuvFrame
        from repro.codec.intra import intra_encode_frame

        yy, xx = np.mgrid[0:96, 0:128]
        y = np.clip(30 + xx + yy // 2, 0, 255).astype(np.uint8)
        frame = YuvFrame(
            y,
            np.full((48, 64), 100, dtype=np.uint8),
            np.full((48, 64), 140, dtype=np.uint8),
        )
        cfg = CodecConfig(width=128, height=96, search_range=8)
        result = intra_encode_frame(frame, cfg)
        assert result.luma_modes is not None
        # Gradient content must actually use the Plane mode somewhere.
        assert (result.luma_modes == MODE_PLANE).sum() > 10
        from repro.codec.quality import psnr

        assert psnr(frame.y, result.recon.y) > 38
