"""CodecConfig validation and derived quantities."""

import pytest

from repro.codec.config import MB_SIZE, PARTITION_MODES, CodecConfig


class TestValidation:
    def test_defaults_are_paper_settings(self):
        cfg = CodecConfig()
        assert cfg.width == 1920
        assert cfg.qp_i == 27 and cfg.qp_p == 28
        assert cfg.enabled_partitions == PARTITION_MODES

    def test_width_must_be_mb_aligned(self):
        with pytest.raises(ValueError, match="width"):
            CodecConfig(width=100, height=96)

    def test_height_must_be_mb_aligned(self):
        with pytest.raises(ValueError, match="height"):
            CodecConfig(width=128, height=100)

    def test_search_range_bounds(self):
        with pytest.raises(ValueError, match="search_range"):
            CodecConfig(search_range=0)
        with pytest.raises(ValueError, match="search_range"):
            CodecConfig(search_range=300)

    def test_num_ref_frames_bounds(self):
        with pytest.raises(ValueError, match="num_ref_frames"):
            CodecConfig(num_ref_frames=0)
        with pytest.raises(ValueError, match="num_ref_frames"):
            CodecConfig(num_ref_frames=17)

    def test_qp_bounds(self):
        with pytest.raises(ValueError, match="qp_i"):
            CodecConfig(qp_i=52)
        with pytest.raises(ValueError, match="qp_p"):
            CodecConfig(qp_p=-1)

    def test_16x16_partition_mandatory(self):
        with pytest.raises(ValueError, match="16x16"):
            CodecConfig(enabled_partitions=((8, 8),))

    def test_unknown_partition_rejected(self):
        with pytest.raises(ValueError, match="unknown partition"):
            CodecConfig(enabled_partitions=((16, 16), (5, 5)))

    def test_empty_partitions_rejected(self):
        with pytest.raises(ValueError):
            CodecConfig(enabled_partitions=())


class TestDerived:
    def test_sa_side_is_twice_range(self):
        assert CodecConfig(search_range=16).sa_side == 32
        assert CodecConfig(search_range=128).sa_side == 256

    def test_mb_grid(self):
        cfg = CodecConfig(width=1920, height=1088)
        assert cfg.mb_cols == 120
        assert cfg.mb_rows == 68
        assert cfg.mb_rows * MB_SIZE == 1088

    def test_qp_for_slice_types(self):
        cfg = CodecConfig(qp_i=27, qp_p=28)
        assert cfg.qp_for(True) == 27
        assert cfg.qp_for(False) == 28

    def test_lambda_standard_formula(self):
        cfg = CodecConfig()
        assert cfg.lambda_for(12) == pytest.approx(0.85)
        assert cfg.lambda_for(18) == pytest.approx(0.85 * 4)

    def test_lambda_override(self):
        cfg = CodecConfig(lambda_mode=3.5)
        assert cfg.lambda_for(40) == 3.5

    def test_frozen(self):
        cfg = CodecConfig()
        with pytest.raises(AttributeError):
            cfg.width = 640  # type: ignore[misc]
