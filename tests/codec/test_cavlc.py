"""CAVLC-structured coefficient coder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.codec.bitstream import BitReader, BitWriter
from repro.codec.cavlc import CavlcCoder
from repro.codec.entropy import LiteCoder, get_coder

levels = st.integers(min_value=-512, max_value=512)
small_levels = st.integers(min_value=-3, max_value=3)


@pytest.fixture
def coder():
    return CavlcCoder()


class TestRoundTrip:
    @given(arrays(np.int64, (4, 4), elements=levels))
    @settings(max_examples=150, deadline=None)
    def test_block_roundtrip(self, block):
        coder = CavlcCoder()
        w = BitWriter()
        coder.write_block(w, block)
        r = BitReader(w.to_bytes())
        np.testing.assert_array_equal(coder.read_block(r), block)

    @given(arrays(np.int64, (4, 4), elements=small_levels))
    @settings(max_examples=100, deadline=None)
    def test_block_roundtrip_trailing_one_heavy(self, block):
        """Small-magnitude blocks stress the trailing-ones path."""
        coder = CavlcCoder()
        w = BitWriter()
        coder.write_block(w, block)
        r = BitReader(w.to_bytes())
        np.testing.assert_array_equal(coder.read_block(r), block)

    @given(arrays(np.int64, (2, 2), elements=levels))
    @settings(max_examples=80, deadline=None)
    def test_chroma_dc_roundtrip(self, dc):
        coder = CavlcCoder()
        w = BitWriter()
        coder.write_chroma_dc(w, dc)
        r = BitReader(w.to_bytes())
        np.testing.assert_array_equal(coder.read_chroma_dc(r), dc)

    def test_huge_levels_escape_path(self, coder):
        block = np.zeros((4, 4), dtype=np.int64)
        block[0, 0] = 30_000
        block[0, 1] = -30_000
        w = BitWriter()
        coder.write_block(w, block)
        r = BitReader(w.to_bytes())
        np.testing.assert_array_equal(coder.read_block(r), block)

    def test_adaptive_suffix_sequence(self, coder):
        """A run of growing magnitudes exercises the suffix ramp."""
        block = np.zeros((4, 4), dtype=np.int64)
        vals = [200, -90, 40, -18, 9, 5, -3, 2]
        for i, v in enumerate(vals):
            block[i // 4, i % 4] = v
        w = BitWriter()
        coder.write_block(w, block)
        r = BitReader(w.to_bytes())
        np.testing.assert_array_equal(coder.read_block(r), block)


class TestBitAccounting:
    def test_block_bits_matches_writing(self, coder, rng):
        blocks = rng.integers(-20, 21, (12, 4, 4)).astype(np.int64)
        bits = coder.block_bits(blocks)
        for k in range(12):
            w = BitWriter()
            coder.write_block(w, blocks[k])
            assert bits[k] == w.bit_count

    def test_zero_block_is_one_bit(self, coder):
        assert coder.block_bits(np.zeros((1, 4, 4), dtype=np.int64))[0] == 1

    def test_trailing_ones_cheaper_than_lite(self, coder):
        """The point of CAVLC: trailing ±1 coefficients are nearly free."""
        lite = LiteCoder()
        block = np.zeros((4, 4), dtype=np.int64)
        block[0, 0] = 7
        block[0, 1] = 1
        block[1, 0] = -1
        block[2, 0] = 1
        assert coder.block_bits(block[None])[0] < lite.block_bits(block[None])[0]

    def test_typical_residuals_cheaper_than_lite(self, rng):
        """On quantized-residual-like data (sparse, small, low-frequency)
        the structured coder should win on average."""
        from repro.codec.transform import tq

        res = rng.integers(-25, 26, (200, 4, 4)).astype(np.int64)
        blocks = tq(res, qp=30)
        cav = CavlcCoder().block_bits(blocks).sum()
        lite = LiteCoder().block_bits(blocks).sum()
        assert cav < lite


class TestFactory:
    def test_get_coder(self):
        assert get_coder("lite").name == "lite"
        assert get_coder("cavlc").name == "cavlc"
        with pytest.raises(ValueError):
            get_coder("cabac")

    def test_config_validation(self):
        from repro.codec.config import CodecConfig

        with pytest.raises(ValueError, match="entropy_coder"):
            CodecConfig(entropy_coder="cabac")


class TestEndToEnd:
    def test_encoder_with_cavlc_bit_exact_stream(self):
        """Full pipeline with entropy_coder='cavlc': closed decode loop."""
        from repro.codec.config import CodecConfig
        from repro.codec.decoder import SequenceDecoder
        from repro.codec.stream import StreamEncoder
        from repro.video.generator import SyntheticSequence

        cfg = CodecConfig(width=128, height=96, search_range=8,
                          num_ref_frames=2, entropy_coder="cavlc")
        clip = SyntheticSequence(width=128, height=96, seed=41).frames(4)
        enc = StreamEncoder(cfg)
        dec = SequenceDecoder.from_header(enc.sequence_header())
        assert dec.cfg.entropy_coder == "cavlc"
        for f in clip:
            stats, packet = enc.encode_frame(f)
            rec = dec.decode_packet(packet)
            np.testing.assert_array_equal(stats.recon.y, rec.y)
            np.testing.assert_array_equal(stats.recon.u, rec.u)

    def test_cavlc_stream_smaller_on_typical_content(self):
        from repro.codec.config import CodecConfig
        from repro.codec.stream import StreamEncoder
        from repro.video.generator import SyntheticSequence

        clip = SyntheticSequence(width=128, height=96, seed=41,
                                 noise_sigma=2.0).frames(4)
        sizes = {}
        for coder in ("lite", "cavlc"):
            cfg = CodecConfig(width=128, height=96, search_range=8,
                              num_ref_frames=2, entropy_coder=coder)
            enc = StreamEncoder(cfg)
            sizes[coder] = sum(len(enc.encode_frame(f)[1]) for f in clip)
        assert sizes["cavlc"] < sizes["lite"]

    def test_framework_real_mode_with_cavlc(self):
        """Collaborative encoding respects the configured coder."""
        from repro.codec.config import CodecConfig
        from repro.codec.encoder import ReferenceEncoder
        from repro.core.config import FrameworkConfig
        from repro.core.framework import FevesFramework
        from repro.hw.presets import get_platform
        from repro.video.generator import SyntheticSequence

        cfg = CodecConfig(width=128, height=96, search_range=8,
                          entropy_coder="cavlc")
        clip = SyntheticSequence(width=128, height=96, seed=43).frames(4)
        ref = ReferenceEncoder(cfg).encode_sequence(clip)
        fw = FevesFramework(get_platform("SysHK"), cfg,
                            FrameworkConfig(compute="real"))
        out = fw.encode(clip)
        for r, o in zip(ref, out, strict=True):
            assert o.encoded is not None and r.bits == o.encoded.bits
