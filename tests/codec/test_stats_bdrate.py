"""Sequence statistics, R-D sweeps and BD metrics."""

import pytest

from repro.codec.bdrate import bd_psnr, bd_rate
from repro.codec.config import CodecConfig
from repro.codec.encoder import ReferenceEncoder
from repro.codec.stats import RdPoint, rd_sweep, summarize
from repro.video.generator import SyntheticSequence


@pytest.fixture(scope="module")
def clip():
    return SyntheticSequence(width=128, height=96, seed=23, noise_sigma=1.5).frames(4)


@pytest.fixture(scope="module")
def cfg():
    return CodecConfig(width=128, height=96, search_range=8, num_ref_frames=1)


class TestSummarize:
    def test_aggregates(self, cfg, clip):
        out = ReferenceEncoder(cfg).encode_sequence(clip)
        s = summarize(out)
        assert s.n_frames == len(clip)
        assert s.total_bits == sum(f.bits for f in out)
        assert s.intra_bits + s.inter_bits == s.total_bits
        assert 25 < s.mean_psnr_y < 60
        assert sum(s.mode_histogram.values()) == (len(clip) - 1) * 48

    def test_kbps(self, cfg, clip):
        out = ReferenceEncoder(cfg).encode_sequence(clip)
        s = summarize(out)
        assert s.kbps(25.0) == pytest.approx(s.mean_bits_per_frame * 25 / 1000)
        with pytest.raises(ValueError):
            s.kbps(0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestRdSweep:
    def test_monotone_rate_and_quality(self, cfg, clip):
        points = rd_sweep(clip, cfg, qps=(22, 28, 34, 40))
        bits = [p.bits for p in points]
        psnr = [p.psnr_y for p in points]
        assert bits == sorted(bits, reverse=True)   # higher QP → fewer bits
        assert psnr == sorted(psnr, reverse=True)   # …and lower quality


class TestBdMetrics:
    def _curve(self, offset_db=0.0, rate_scale=1.0):
        # Synthetic plausible R-D curve: PSNR = a + b*log10(bits).
        return [
            RdPoint(qp=q, bits=int(b * rate_scale), psnr_y=p + offset_db)
            for q, b, p in (
                (37, 10_000, 30.0), (32, 20_000, 33.0),
                (27, 40_000, 36.0), (22, 80_000, 39.0),
            )
        ]

    def test_identical_curves_zero(self):
        a = self._curve()
        assert bd_rate(a, self._curve()) == pytest.approx(0.0, abs=1e-6)
        assert bd_psnr(a, self._curve()) == pytest.approx(0.0, abs=1e-9)

    def test_rate_scale_detected(self):
        a = self._curve()
        worse = self._curve(rate_scale=1.10)  # +10% rate at equal PSNR
        assert bd_rate(a, worse) == pytest.approx(10.0, rel=0.02)
        assert bd_psnr(a, worse) < 0

    def test_psnr_offset_detected(self):
        a = self._curve()
        better = self._curve(offset_db=0.5)
        assert bd_psnr(a, better) == pytest.approx(0.5, rel=0.02)
        assert bd_rate(a, better) < 0

    def test_requires_four_points(self):
        a = self._curve()
        with pytest.raises(ValueError):
            bd_rate(a[:3], a)

    def test_non_monotone_rejected(self):
        bad = [
            RdPoint(qp=1, bits=100, psnr_y=30),
            RdPoint(qp=2, bits=200, psnr_y=29),
            RdPoint(qp=3, bits=300, psnr_y=31),
            RdPoint(qp=4, bits=400, psnr_y=32),
        ]
        with pytest.raises(ValueError):
            bd_rate(bad, bad)

    def test_real_encoder_ablation_direction(self, cfg, clip):
        """Disabling small partitions must cost BD-rate (or be ~neutral)."""
        full = rd_sweep(clip, cfg, qps=(22, 28, 34, 40))
        coarse_cfg = CodecConfig(
            width=128, height=96, search_range=8,
            enabled_partitions=((16, 16),),
        )
        coarse = rd_sweep(clip, coarse_cfg, qps=(22, 28, 34, 40))
        delta = bd_rate(full, coarse)
        assert delta > -2.0  # removing tools should not *help* materially
