"""Frame containers and geometry arithmetic."""

import numpy as np
import pytest

from repro.codec.frames import FrameGeometry, YuvFrame, mb_view, pad_plane


class TestFrameGeometry:
    def test_basic_properties(self):
        g = FrameGeometry(width=352, height=288)
        assert g.mb_cols == 22
        assert g.mb_rows == 18
        assert g.chroma_width == 176
        assert g.chroma_height == 144

    def test_alignment_required(self):
        with pytest.raises(ValueError):
            FrameGeometry(width=350, height=288)

    def test_luma_row_slice(self):
        g = FrameGeometry(width=64, height=64)
        assert g.luma_row_slice(0) == slice(0, 16)
        assert g.luma_row_slice(3) == slice(48, 64)

    def test_luma_row_slice_out_of_range(self):
        g = FrameGeometry(width=64, height=64)
        with pytest.raises(ValueError):
            g.luma_row_slice(4)
        with pytest.raises(ValueError):
            g.luma_row_slice(-1)

    def test_luma_rows_slice_band(self):
        g = FrameGeometry(width=64, height=96)
        assert g.luma_rows_slice(1, 3) == slice(16, 64)
        assert g.luma_rows_slice(0, 0) == slice(0, 0)

    def test_luma_rows_slice_overflow(self):
        g = FrameGeometry(width=64, height=96)
        with pytest.raises(ValueError):
            g.luma_rows_slice(4, 3)

    def test_chroma_rows_slice_half_resolution(self):
        g = FrameGeometry(width=64, height=96)
        assert g.chroma_rows_slice(1, 2) == slice(8, 24)


class TestYuvFrame:
    def test_blank(self):
        f = YuvFrame.blank(64, 48, value=100)
        assert f.y.shape == (48, 64)
        assert f.u.shape == (24, 32)
        assert (f.y == 100).all()

    def test_dtype_enforced(self):
        with pytest.raises(TypeError):
            YuvFrame(
                y=np.zeros((48, 64), dtype=np.int32),
                u=np.zeros((24, 32), dtype=np.uint8),
                v=np.zeros((24, 32), dtype=np.uint8),
            )

    def test_chroma_shape_enforced(self):
        with pytest.raises(ValueError):
            YuvFrame(
                y=np.zeros((48, 64), dtype=np.uint8),
                u=np.zeros((48, 64), dtype=np.uint8),
                v=np.zeros((24, 32), dtype=np.uint8),
            )

    def test_copy_is_deep(self):
        f = YuvFrame.blank(32, 32)
        g = f.copy()
        g.y[0, 0] = 7
        assert f.y[0, 0] == 128

    def test_geometry(self):
        assert YuvFrame.blank(64, 48).geometry == FrameGeometry(width=64, height=48)


class TestPadPlane:
    def test_zero_pad_copies(self):
        a = np.arange(16, dtype=np.uint8).reshape(4, 4)
        b = pad_plane(a, 0)
        b[0, 0] = 99
        assert a[0, 0] == 0

    def test_edge_replication(self):
        a = np.array([[1, 2], [3, 4]], dtype=np.uint8)
        p = pad_plane(a, 2)
        assert p.shape == (6, 6)
        assert (p[:3, :3] == 1).all()  # top-left corner replicates a[0, 0]
        assert p[0, 0] == 1 and p[-1, -1] == 4

    def test_negative_pad_rejected(self):
        with pytest.raises(ValueError):
            pad_plane(np.zeros((4, 4), dtype=np.uint8), -1)


class TestMbView:
    def test_view_not_copy(self):
        plane = np.zeros((32, 32), dtype=np.uint8)
        v = mb_view(plane, 1, 1)
        v[0, 0] = 42
        assert plane[16, 16] == 42

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            mb_view(np.zeros((32, 32), dtype=np.uint8), 2, 0)
