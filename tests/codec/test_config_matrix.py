"""Configuration-matrix fuzz: every codec option combination must produce a
bit-exact closed encode/decode loop.

Hypothesis samples the whole option space — geometry, search range,
references, partition subsets, entropy coder, sub-pel metric, slices,
QPs — and the invariant is always the same: the standalone decoder
reproduces the encoder's reconstruction exactly, and the sequence header
round-trips the configuration.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.codec.config import PARTITION_MODES, CodecConfig
from repro.codec.decoder import SequenceDecoder
from repro.codec.stream import StreamEncoder
from repro.video.generator import SyntheticSequence


@st.composite
def codec_configs(draw):
    width = 16 * draw(st.integers(min_value=3, max_value=6))
    height = 16 * draw(st.integers(min_value=3, max_value=6))
    extra = draw(
        st.lists(st.sampled_from(PARTITION_MODES[1:]), unique=True, max_size=3)
    )
    partitions = tuple(
        m for m in PARTITION_MODES if m == (16, 16) or m in extra
    )
    qp = draw(st.integers(min_value=15, max_value=45))
    return CodecConfig(
        width=width,
        height=height,
        search_range=draw(st.sampled_from((4, 8))),
        num_ref_frames=draw(st.integers(min_value=1, max_value=3)),
        qp_i=qp,
        qp_p=min(51, qp + 1),
        enabled_partitions=partitions,
        subpel=draw(st.booleans()),
        subpel_metric=draw(st.sampled_from(("sad", "satd"))),
        entropy_coder=draw(st.sampled_from(("lite", "cavlc"))),
        num_slices=draw(st.integers(min_value=1, max_value=3)),
        deblock_across_slices=draw(st.booleans()),
    )


class TestConfigMatrix:
    @given(cfg=codec_configs(), seed=st.integers(min_value=0, max_value=10**6))
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_closed_loop_for_any_config(self, cfg, seed):
        clip = SyntheticSequence(
            width=cfg.width, height=cfg.height, seed=seed, noise_sigma=1.0
        ).frames(3)
        enc = StreamEncoder(cfg)
        header = enc.sequence_header()
        dec = SequenceDecoder.from_header(header)

        # The header must carry the full configuration.
        back = dec.cfg
        for field in (
            "width", "height", "search_range", "num_ref_frames", "qp_i",
            "qp_p", "enabled_partitions", "entropy_coder", "num_slices",
            "deblock_across_slices",
        ):
            assert getattr(back, field) == getattr(cfg, field), field

        for f in clip:
            stats, packet = enc.encode_frame(f)
            rec = dec.decode_packet(packet)
            np.testing.assert_array_equal(stats.recon.y, rec.y)
            np.testing.assert_array_equal(stats.recon.u, rec.u)
            np.testing.assert_array_equal(stats.recon.v, rec.v)
