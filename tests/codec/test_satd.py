"""SATD metric and its use in SME."""

import numpy as np
import pytest

from repro.codec.satd import H4, block_metric, sad_blocks, satd_blocks


class TestSatd:
    def test_zero_for_identical(self, rng):
        a = rng.integers(0, 256, (5, 8, 8), dtype=np.uint8)
        np.testing.assert_array_equal(satd_blocks(a, a), 0)

    def test_dc_difference_value(self):
        """Constant offset d: only the DC coefficient survives — SATD =
        |16·d| / 2 per 4×4 tile."""
        a = np.zeros((1, 4, 4), dtype=np.uint8)
        b = np.full((1, 4, 4), 3, dtype=np.uint8)
        assert satd_blocks(a, b)[0] == 16 * 3 // 2

    def test_tiles_accumulate(self):
        a = np.zeros((1, 8, 8), dtype=np.uint8)
        b = np.full((1, 8, 8), 3, dtype=np.uint8)
        assert satd_blocks(a, b)[0] == 4 * (16 * 3 // 2)

    def test_hadamard_is_orthogonal_scaled(self):
        np.testing.assert_array_equal(H4 @ H4.T, 4 * np.eye(4, dtype=np.int64))

    def test_structured_vs_noise(self, rng):
        """SATD compresses a flat (DC) error into one coefficient but
        spreads white noise across all 16 — matching how the codec's
        transform will see them."""
        a = np.zeros((1, 4, 4), dtype=np.uint8)
        dc = np.full((1, 4, 4), 4, dtype=np.uint8)           # SAD 64
        noise = rng.permutation(np.repeat([0, 8], 8)).reshape(1, 4, 4).astype(np.uint8)  # SAD 64
        assert sad_blocks(a, dc)[0] == sad_blocks(a, noise)[0]
        assert satd_blocks(a, dc)[0] < satd_blocks(a, noise)[0]

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            satd_blocks(np.zeros((1, 4, 4)), np.zeros((1, 4, 8)))
        with pytest.raises(ValueError):
            satd_blocks(np.zeros((1, 6, 4)), np.zeros((1, 6, 4)))

    def test_factory(self):
        assert block_metric("sad") is sad_blocks
        assert block_metric("satd") is satd_blocks
        with pytest.raises(ValueError):
            block_metric("ssd")


class TestSatdInSme:
    def test_config_validation(self):
        from repro.codec.config import CodecConfig

        with pytest.raises(ValueError, match="subpel_metric"):
            CodecConfig(subpel_metric="mse")

    def test_satd_pipeline_bit_exact_collaborative(self):
        """The metric flows through reference + framework identically."""
        from repro.codec.config import CodecConfig
        from repro.codec.encoder import ReferenceEncoder
        from repro.core.config import FrameworkConfig
        from repro.core.framework import FevesFramework
        from repro.hw.presets import get_platform
        from repro.video.generator import moving_objects_sequence

        cfg = CodecConfig(width=128, height=96, search_range=8,
                          subpel_metric="satd")
        clip = moving_objects_sequence(width=128, height=96, count=4, seed=7)
        ref = ReferenceEncoder(cfg).encode_sequence(clip)
        fw = FevesFramework(get_platform("SysHK"), cfg,
                            FrameworkConfig(compute="real"))
        out = fw.encode(clip)
        for r, o in zip(ref, out, strict=True):
            assert r.bits == o.encoded.bits
            np.testing.assert_array_equal(r.recon.y, o.encoded.recon.y)

    def test_metrics_give_different_refinements(self):
        from repro.codec.config import CodecConfig
        from repro.codec.encoder import ReferenceEncoder
        from repro.video.generator import moving_objects_sequence

        clip = moving_objects_sequence(width=128, height=96, count=3, seed=7)
        outs = {}
        for metric in ("sad", "satd"):
            cfg = CodecConfig(width=128, height=96, search_range=8,
                              subpel_metric=metric)
            outs[metric] = ReferenceEncoder(cfg).encode_sequence(clip)
        # Different cost surfaces ⇒ at least some MVs differ.
        assert any(
            a.bits != b.bits for a, b in zip(outs["sad"], outs["satd"], strict=True)
        )
