"""SME: sub-pixel refinement correctness."""

import numpy as np
import pytest

from repro.codec.config import CodecConfig
from repro.codec.interpolation import interpolate_plane
from repro.codec.me import motion_estimate_rows
from repro.codec.sme import SubpelField, subpel_refine_rows


@pytest.fixture
def cfg():
    return CodecConfig(width=64, height=64, search_range=4, num_ref_frames=1)


def run_sme(cur, ref, cfg, row0=0, nrows=None):
    nrows = nrows if nrows is not None else cfg.mb_rows
    me = motion_estimate_rows(cur, [ref], 0, cfg.mb_rows, cfg)
    sf = interpolate_plane(ref)
    return me, subpel_refine_rows(cur, [sf], me, row0, nrows, cfg)


class TestRefinement:
    def test_never_worse_than_fullpel(self, rng, cfg):
        """Refined SAD ≤ the SF-sampled SAD at the full-pel position."""
        ref = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        cur = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        me, sme = run_sme(cur, ref, cfg)
        cfg_off = CodecConfig(
            width=64, height=64, search_range=4, num_ref_frames=1, subpel=False
        )
        sf = interpolate_plane(ref)
        base = subpel_refine_rows(cur, [sf], me, 0, 4, cfg_off)
        # subpel=False keeps full-pel MVs with ME SADs; on interior MBs the
        # SF-sampled value at full-pel equals the ME SAD, so refinement
        # can only improve.
        for shape in sme.mode_shapes:
            assert (
                sme.sads[shape][1:-1, 1:-1] <= base.sads[shape][1:-1, 1:-1]
            ).all()

    def test_exact_halfpel_shift_recovered(self, cfg):
        """Current = half-pel interpolation of ref ⇒ SME finds (0, +2)."""
        rng = np.random.default_rng(3)
        base = rng.integers(0, 256, (80, 80), dtype=np.uint8)
        # Smooth the base so interpolation is well-behaved.
        base = ((base.astype(np.int32)
                 + np.roll(base, 1, 1) + np.roll(base, -1, 1)
                 + np.roll(base, 1, 0) + np.roll(base, -1, 0)) // 5).astype(np.uint8)
        ref = base[8:72, 8:72].copy()
        sf_full = interpolate_plane(ref)
        cur = sf_full[0::4, 2::4]  # horizontal half-pel samples (b positions)
        me, sme = run_sme(cur, ref, cfg)
        mv = sme.qmvs[(16, 16)][1:-1, 1:-1, 0, :]
        # For interior MBs the dominant refined offset must be (0, +2).
        frac_match = ((mv[..., 0] == 0) & (mv[..., 1] == 2)).mean()
        assert frac_match > 0.7

    def test_identical_frames_zero_mv(self, rng, cfg):
        ref = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        me, sme = run_sme(ref, ref, cfg)
        assert (sme.qmvs[(16, 16)] == 0).all()
        assert (sme.sads[(16, 16)] == 0).all()

    def test_subpel_disabled_keeps_fullpel(self, rng):
        cfg = CodecConfig(
            width=64, height=64, search_range=4, num_ref_frames=1, subpel=False
        )
        ref = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        cur = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        me, sme = run_sme(cur, ref, cfg)
        for shape in sme.mode_shapes:
            np.testing.assert_array_equal(sme.qmvs[shape], 4 * me.mvs[shape])
            np.testing.assert_array_equal(sme.sads[shape], me.sads[shape])

    def test_qmv_within_quarter_ring_of_fullpel_interior(self, rng, cfg):
        """Away from borders (no clamping) the refinement moves ≤ ±3/4 pel."""
        ref = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        cur = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        me, sme = run_sme(cur, ref, cfg)
        for shape in sme.mode_shapes:
            d = sme.qmvs[shape][1:-1, 1:-1] - 4 * me.mvs[shape][1:-1, 1:-1]
            assert (np.abs(d) <= 3).all()  # half ring (±2) + quarter ring (±1)

    def test_border_clamping_keeps_blocks_inside(self, rng, cfg):
        """At frame borders the effective position never leaves the SF."""
        ref = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        cur = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        me, sme = run_sme(cur, ref, cfg)
        from repro.codec.partitions import get_mode

        for shape in sme.mode_shapes:
            mode = get_mode(shape)
            bh, bw = shape
            for r in range(4):
                for c in range(4):
                    for p in range(mode.nparts):
                        oy, ox = mode.origins[p]
                        qy = 4 * (16 * r + oy) + sme.qmvs[shape][r, c, p, 0]
                        qx = 4 * (16 * c + ox) + sme.qmvs[shape][r, c, p, 1]
                        assert 0 <= qy <= 4 * (64 - bh)
                        assert 0 <= qx <= 4 * (64 - bw)


class TestBands:
    def test_band_matches_full(self, rng, cfg):
        ref = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        cur = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        me = motion_estimate_rows(cur, [ref], 0, 4, cfg)
        sf = interpolate_plane(ref)
        full = subpel_refine_rows(cur, [sf], me, 0, 4, cfg)
        band = subpel_refine_rows(cur, [sf], me, 1, 2, cfg)
        for shape in full.mode_shapes:
            np.testing.assert_array_equal(band.qmvs[shape], full.qmvs[shape][1:3])

    def test_merge(self, rng, cfg):
        ref = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        cur = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        me = motion_estimate_rows(cur, [ref], 0, 4, cfg)
        sf = interpolate_plane(ref)
        full = subpel_refine_rows(cur, [sf], me, 0, 4, cfg)
        parts = [
            subpel_refine_rows(cur, [sf], me, 0, 2, cfg),
            subpel_refine_rows(cur, [sf], me, 2, 2, cfg),
        ]
        merged = SubpelField.merge(parts)
        for shape in full.mode_shapes:
            np.testing.assert_array_equal(merged.qmvs[shape], full.qmvs[shape])
            np.testing.assert_array_equal(merged.sads[shape], full.sads[shape])

    def test_band_not_covered_by_me(self, rng, cfg):
        ref = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        cur = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        me = motion_estimate_rows(cur, [ref], 0, 2, cfg)
        sf = interpolate_plane(ref)
        with pytest.raises(ValueError, match="not covered"):
            subpel_refine_rows(cur, [sf], me, 1, 3, cfg)

    def test_merge_gap_rejected(self, rng, cfg):
        ref = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        cur = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        me = motion_estimate_rows(cur, [ref], 0, 4, cfg)
        sf = interpolate_plane(ref)
        a = subpel_refine_rows(cur, [sf], me, 0, 1, cfg)
        c = subpel_refine_rows(cur, [sf], me, 2, 2, cfg)
        with pytest.raises(ValueError, match="contiguous"):
            SubpelField.merge([a, c])


class TestMultiRef:
    def test_refines_in_chosen_reference(self, rng):
        cfg = CodecConfig(width=64, height=64, search_range=4, num_ref_frames=2)
        ref0 = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        ref1 = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        cur = ref1.copy()
        me = motion_estimate_rows(cur, [ref0, ref1], 0, 4, cfg)
        sfs = [interpolate_plane(ref0), interpolate_plane(ref1)]
        sme = subpel_refine_rows(cur, sfs, me, 0, 4, cfg)
        assert (sme.refs[(16, 16)] == 1).all()
        assert (sme.sads[(16, 16)] == 0).all()
