"""SAD kernels: cross-checks against naive implementations + properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.codec.sad import (
    block_sad_grid,
    sad,
    strip_cell_sads,
    strip_cell_sads_batch,
)

u8 = st.integers(min_value=0, max_value=255)


def naive_cell_sads(cur_mb: np.ndarray, ref_mb: np.ndarray) -> np.ndarray:
    out = np.zeros((4, 4), dtype=np.int64)
    for cy in range(4):
        for cx in range(4):
            a = cur_mb[4 * cy : 4 * cy + 4, 4 * cx : 4 * cx + 4].astype(np.int64)
            b = ref_mb[4 * cy : 4 * cy + 4, 4 * cx : 4 * cx + 4].astype(np.int64)
            out[cy, cx] = np.abs(a - b).sum()
    return out


class TestSad:
    def test_identical_blocks_zero(self, rng):
        a = rng.integers(0, 256, (16, 16), dtype=np.uint8)
        assert sad(a, a) == 0

    def test_known_value(self):
        a = np.zeros((2, 2), dtype=np.uint8)
        b = np.full((2, 2), 3, dtype=np.uint8)
        assert sad(a, b) == 12

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            sad(np.zeros((2, 2), dtype=np.uint8), np.zeros((2, 3), dtype=np.uint8))

    @given(
        arrays(np.uint8, (8, 8), elements=u8),
        arrays(np.uint8, (8, 8), elements=u8),
    )
    @settings(max_examples=50, deadline=None)
    def test_symmetric_and_nonnegative(self, a, b):
        assert sad(a, b) == sad(b, a) >= 0

    @given(arrays(np.uint8, (8, 8), elements=u8))
    @settings(max_examples=50, deadline=None)
    def test_zero_iff_equal(self, a):
        assert sad(a, a) == 0
        b = a.copy()
        b[0, 0] = (int(b[0, 0]) + 1) % 256
        assert sad(a, b) > 0


class TestStripCellSads:
    def test_matches_naive_per_mb(self, rng):
        cur = rng.integers(0, 256, (16, 64), dtype=np.uint8)
        ref = rng.integers(0, 256, (16, 64), dtype=np.uint8)
        got = strip_cell_sads(cur, ref)
        assert got.shape == (4, 4, 4)
        for mb in range(4):
            want = naive_cell_sads(
                cur[:, 16 * mb : 16 * mb + 16], ref[:, 16 * mb : 16 * mb + 16]
            )
            np.testing.assert_array_equal(got[mb], want)

    def test_cells_sum_to_full_sad(self, rng):
        cur = rng.integers(0, 256, (16, 32), dtype=np.uint8)
        ref = rng.integers(0, 256, (16, 32), dtype=np.uint8)
        cells = strip_cell_sads(cur, ref)
        for mb in range(2):
            assert cells[mb].sum() == sad(
                cur[:, 16 * mb : 16 * mb + 16], ref[:, 16 * mb : 16 * mb + 16]
            )

    def test_bad_strip_shape(self, rng):
        with pytest.raises(ValueError):
            strip_cell_sads(
                rng.integers(0, 256, (16, 20), dtype=np.uint8),
                rng.integers(0, 256, (16, 20), dtype=np.uint8),
            )


class TestBatch:
    def test_batch_matches_single(self, rng):
        cur = rng.integers(0, 256, (16, 48), dtype=np.uint8)
        windows = rng.integers(0, 256, (5, 16, 48), dtype=np.uint8)
        batch = strip_cell_sads_batch(cur, windows)
        assert batch.shape == (5, 3, 4, 4)
        for k in range(5):
            np.testing.assert_array_equal(batch[k], strip_cell_sads(cur, windows[k]))

    def test_incompatible_shapes(self, rng):
        with pytest.raises(ValueError):
            strip_cell_sads_batch(
                rng.integers(0, 256, (16, 32), dtype=np.uint8),
                rng.integers(0, 256, (3, 16, 48), dtype=np.uint8),
            )


class TestBlockSadGrid:
    def test_matches_naive(self, rng):
        a = rng.integers(0, 256, (16, 16), dtype=np.uint8)
        b = rng.integers(0, 256, (16, 16), dtype=np.uint8)
        np.testing.assert_array_equal(block_sad_grid(a, b), naive_cell_sads(a, b))

    def test_requires_16x16(self):
        with pytest.raises(ValueError):
            block_sad_grid(
                np.zeros((8, 8), dtype=np.uint8), np.zeros((8, 8), dtype=np.uint8)
            )
