"""Intra frame coding, GOP reference store and quality metrics."""

import math

import numpy as np
import pytest

from repro.codec.frames import YuvFrame
from repro.codec.gop import ReferenceStore
from repro.codec.intra import _dc_predict, intra_encode_frame
from repro.codec.quality import frame_psnr, mse, psnr


class TestDcPredict:
    def test_no_neighbours_gives_128(self):
        recon = np.zeros((32, 32), dtype=np.uint8)
        assert _dc_predict(recon, 0, 0, 16) == 128

    def test_top_only(self):
        # Block at column 0 has no left neighbour: prediction = top mean.
        recon = np.zeros((32, 32), dtype=np.uint8)
        recon[15, 0:16] = 100
        assert _dc_predict(recon, 16, 0, 16) == 100

    def test_top_and_left_average(self):
        recon = np.zeros((32, 32), dtype=np.uint8)
        recon[15, 16:32] = 100  # top row
        recon[16:32, 15] = 50   # left col
        assert _dc_predict(recon, 16, 16, 16) == 75


class TestIntraFrame:
    def test_flat_frame_reconstructs_exactly(self, tiny_cfg):
        f = YuvFrame.blank(tiny_cfg.width, tiny_cfg.height, value=90)
        result = intra_encode_frame(f, tiny_cfg)
        np.testing.assert_array_equal(result.recon.y, f.y)
        # Only the first MB (predicted from the 128 fallback) codes residual;
        # every other MB predicts exactly from reconstructed neighbours.
        assert not result.cnz4[:, 4:].any()
        assert not result.cnz4[4:, :].any()

    def test_textured_frame_quality(self, small_cfg, rng):
        from tests.conftest import random_frame

        f = random_frame(rng, small_cfg.width, small_cfg.height)
        result = intra_encode_frame(f, small_cfg)
        # Random noise is the worst case; still expect > 25 dB at QP 27.
        assert psnr(f.y, result.recon.y) > 25.0
        assert result.bits > 0

    def test_smooth_frame_cheap(self, small_cfg):
        f = YuvFrame.blank(small_cfg.width, small_cfg.height)
        smooth = intra_encode_frame(f, small_cfg).bits
        rng = np.random.default_rng(0)
        from tests.conftest import random_frame

        noisy_bits = intra_encode_frame(
            random_frame(rng, small_cfg.width, small_cfg.height), small_cfg
        ).bits
        assert smooth < noisy_bits / 10


class TestReferenceStore:
    def test_reset_starts_fresh(self):
        store = ReferenceStore(max_refs=3)
        store.reset(YuvFrame.blank(32, 32))
        assert store.num_active == 1
        assert store.sfs == []

    def test_push_and_eviction(self):
        store = ReferenceStore(max_refs=2)
        store.reset(YuvFrame.blank(32, 32, value=1))
        store.push_sf(np.zeros((128, 128), dtype=np.uint8))
        store.push(YuvFrame.blank(32, 32, value=2))
        store.push_sf(np.ones((128, 128), dtype=np.uint8))
        store.push(YuvFrame.blank(32, 32, value=3))
        assert store.num_active == 2
        assert store.frames[0].y[0, 0] == 3
        assert len(store.frames) == 2
        assert len(store.sfs) == 1  # SF of newest frame pending

    def test_push_sf_misalignment_detected(self):
        store = ReferenceStore(max_refs=2)
        store.reset(YuvFrame.blank(32, 32))
        store.push_sf(np.zeros((128, 128), dtype=np.uint8))
        with pytest.raises(RuntimeError, match="misaligned"):
            store.push_sf(np.zeros((128, 128), dtype=np.uint8))

    def test_active_sfs_requires_interpolation(self):
        store = ReferenceStore(max_refs=1)
        store.reset(YuvFrame.blank(32, 32))
        with pytest.raises(RuntimeError, match="not interpolated"):
            store.active_sfs()

    def test_max_refs_validation(self):
        with pytest.raises(ValueError):
            ReferenceStore(max_refs=0)
        with pytest.raises(ValueError):
            ReferenceStore(max_refs=17)

    def test_warmup_ramp(self):
        """num_active grows by one per pushed frame up to the window size."""
        store = ReferenceStore(max_refs=4)
        store.reset(YuvFrame.blank(32, 32))
        for expected in (2, 3, 4, 4):
            store.push_sf(np.zeros((128, 128), dtype=np.uint8))
            store.push(YuvFrame.blank(32, 32))
            assert store.num_active == expected


class TestQuality:
    def test_psnr_identical_is_inf(self):
        a = np.full((8, 8), 7, dtype=np.uint8)
        assert math.isinf(psnr(a, a))

    def test_known_mse(self):
        a = np.zeros((4, 4), dtype=np.uint8)
        b = np.full((4, 4), 2, dtype=np.uint8)
        assert mse(a, b) == 4.0
        assert psnr(a, b) == pytest.approx(10 * math.log10(255**2 / 4))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse(np.zeros((4, 4)), np.zeros((4, 5)))

    def test_frame_psnr_keys(self):
        f = YuvFrame.blank(32, 32)
        out = frame_psnr(f, f.copy())
        assert set(out) == {"y", "u", "v"}
