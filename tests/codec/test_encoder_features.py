"""Encoder features: scene-cut detection, loss concealment, motion stats,
thread-parallel real-mode execution."""

import numpy as np
import pytest

from repro.codec.config import CodecConfig
from repro.codec.decoder import SequenceDecoder
from repro.codec.encoder import ReferenceEncoder
from repro.codec.stats import motion_stats
from repro.codec.stream import StreamEncoder
from repro.video.generator import SyntheticSequence

CFG = CodecConfig(width=128, height=96, search_range=8, num_ref_frames=2)


def spliced_clip():
    """Two scenes with a hard cut at frame 3.

    Low-motion content (no objects, gentle pan: inter-frame MAD ~2-4)
    spliced against its luma inverse (MAD ~80 at the cut) — a clean
    separation for the MAD-based detector.
    """
    from repro.codec.frames import YuvFrame

    a = SyntheticSequence(width=128, height=96, seed=1, noise_sigma=0.5,
                          n_objects=0, pan=(0.5, 1.0))
    scene_a = a.frames(3)
    scene_b = [YuvFrame((255 - f.y), f.u, f.v) for f in a.frames(4, start=3)]
    return scene_a + scene_b


class TestSceneCut:
    def test_cut_triggers_intra(self):
        enc = ReferenceEncoder(CFG, scene_cut_threshold=20.0)
        out = enc.encode_sequence(spliced_clip())
        assert enc.scene_cuts == [3]
        assert out[3].is_intra
        assert not out[4].is_intra

    def test_no_detector_codes_cut_as_p(self):
        enc = ReferenceEncoder(CFG)
        out = enc.encode_sequence(spliced_clip())
        assert all(not f.is_intra for f in out[1:])

    def test_intra_at_cut_improves_quality(self):
        clip = spliced_clip()
        plain = ReferenceEncoder(CFG).encode_sequence(clip)
        smart = ReferenceEncoder(
            CFG, scene_cut_threshold=20.0
        ).encode_sequence(clip)
        # The refreshed GOP predicts scene B from a scene-B reference.
        assert smart[4].psnr["y"] >= plain[4].psnr["y"] - 0.2
        assert smart[3].is_intra and not plain[3].is_intra

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ReferenceEncoder(CFG, scene_cut_threshold=0.0)

    def test_smooth_content_never_cuts(self):
        clip = SyntheticSequence(width=128, height=96, seed=5, n_objects=0,
                                 noise_sigma=0.5, pan=(0.5, 1.0)).frames(6)
        enc = ReferenceEncoder(CFG, scene_cut_threshold=20.0)
        enc.encode_sequence(clip)
        assert enc.scene_cuts == []


class TestLossConcealment:
    def test_concealment_keeps_decoding(self):
        clip = SyntheticSequence(width=128, height=96, seed=7).frames(5)
        enc = StreamEncoder(CFG)
        dec = SequenceDecoder.from_header(enc.sequence_header())
        packets = [enc.encode_frame(f)[1] for f in clip]
        dec.decode_packet(packets[0])
        dec.decode_packet(packets[1])
        concealed = dec.conceal_lost_frame()          # packet 2 lost
        assert concealed.y.shape == (96, 128)
        recovered = dec.decode_packet(packets[3])     # keeps going
        assert recovered.y.shape == (96, 128)

    def test_drift_bounded_and_quality_restored_by_intra(self):
        from repro.codec.quality import psnr

        clip = SyntheticSequence(width=128, height=96, seed=7).frames(8)
        cfg = CodecConfig(width=128, height=96, search_range=8)
        enc = StreamEncoder(cfg)
        dec = SequenceDecoder.from_header(enc.sequence_header())
        stats_packets = [enc.encode_frame(f) for f in clip]
        dec.decode_packet(stats_packets[0][1])
        dec.conceal_lost_frame()                      # frame 1 lost
        drifted = dec.decode_packet(stats_packets[2][1])
        clean = stats_packets[2][0].recon
        assert not np.array_equal(drifted.y, clean.y)  # drift is real
        assert psnr(drifted.y, clean.y) > 20           # but bounded

    def test_cannot_conceal_before_first_frame(self):
        enc = StreamEncoder(CFG)
        dec = SequenceDecoder.from_header(enc.sequence_header())
        with pytest.raises(RuntimeError):
            dec.conceal_lost_frame()


class TestMotionStats:
    def test_panning_scene_has_motion(self):
        clip = SyntheticSequence(width=128, height=96, seed=3, pan=(0.0, 3.0),
                                 noise_sigma=0).frames(3)
        enc = ReferenceEncoder(CFG, keep_syntax=True)
        out = enc.encode_sequence(clip)
        syn = out[2].syntax
        assert syn is not None and syn.mv4 is not None
        stats = motion_stats(syn.mv4, syn.ref4)
        assert stats.mean_magnitude > 4.0   # ~3 px pan = 12 qpel
        assert stats.zero_fraction < 0.5
        assert sum(stats.ref_histogram.values()) == (96 // 4) * (128 // 4)

    def test_static_scene_zero_motion(self):
        f = SyntheticSequence(width=128, height=96, seed=3, noise_sigma=0).frame(0)
        enc = ReferenceEncoder(CFG, keep_syntax=True)
        enc.encode_frame(f)
        out = enc.encode_frame(f.copy())
        stats = motion_stats(out.syntax.mv4, out.syntax.ref4)
        # The reference is the quantized+deblocked recon, so SME may find
        # tiny sub-pel minima; magnitudes stay small and many blocks are 0.
        assert stats.zero_fraction > 0.3
        assert stats.mean_magnitude < 2.0


class TestParallelRealMode:
    def test_parallel_output_identical(self):
        from repro.core.config import FrameworkConfig
        from repro.core.framework import FevesFramework
        from repro.hw.presets import get_platform

        clip = SyntheticSequence(width=128, height=96, seed=13).frames(4)
        results = {}
        for workers in (0, 3):
            fw = FevesFramework(
                get_platform("SysNFF"), CFG,
                FrameworkConfig(compute="real", parallel_workers=workers),
            )
            results[workers] = fw.encode(clip)
        for a, b in zip(results[0], results[3], strict=True):
            assert a.encoded.bits == b.encoded.bits
            np.testing.assert_array_equal(a.encoded.recon.y, b.encoded.recon.y)
            np.testing.assert_array_equal(a.encoded.recon.v, b.encoded.recon.v)

    def test_worker_bound_validated(self):
        from repro.core.config import FrameworkConfig

        with pytest.raises(ValueError):
            FrameworkConfig(parallel_workers=100)

    def test_parallel_thunk_exception_propagates(self):
        from repro.hw.des import Op, Resource, Simulator

        r = Resource("r")

        def boom(op):
            raise RuntimeError("kernel failed")

        Op("a", r, 1.0, thunk=boom)
        with pytest.raises(RuntimeError, match="kernel failed"):
            Simulator([r]).run(parallel_workers=2)
