"""INT: 6-tap/bilinear SF generation — conformance and band exactness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec.interpolation import (
    PAD,
    clamp_qpos,
    interpolate_plane,
    interpolate_rows,
    subpel_block,
)


class TestIntegerPositions:
    def test_integer_samples_preserved(self, rng):
        y = rng.integers(0, 256, (32, 32), dtype=np.uint8)
        sf = interpolate_plane(y)
        assert sf.shape == (128, 128)
        np.testing.assert_array_equal(sf[0::4, 0::4], y)

    def test_constant_plane_constant_sf(self):
        y = np.full((32, 32), 77, dtype=np.uint8)
        sf = interpolate_plane(y)
        assert (sf == 77).all()

    def test_sf_is_16x_the_area(self, rng):
        y = rng.integers(0, 256, (16, 48), dtype=np.uint8)
        sf = interpolate_plane(y)
        assert sf.size == 16 * y.size


class TestSixTapFilter:
    def test_halfpel_horizontal_hand_value(self):
        """b = (E - 5F + 20G + 20H - 5I + J + 16) >> 5 on a known ramp."""
        y = np.zeros((16, 16), dtype=np.uint8)
        y[:, :] = np.arange(16, dtype=np.uint8)[None, :] * 10
        sf = interpolate_plane(y)
        # At interior column x=7: taps 50,60,70,80,90,100.
        e, f, g, h, i, j = 50, 60, 70, 80, 90, 100
        want = (e - 5 * f + 20 * g + 20 * h - 5 * i + j + 16) >> 5
        assert sf[0, 4 * 7 + 2] == want

    def test_halfpel_vertical_matches_transpose(self, rng):
        y = rng.integers(0, 256, (32, 32), dtype=np.uint8)
        sf = interpolate_plane(y)
        sf_t = interpolate_plane(np.ascontiguousarray(y.T))
        # h of y == b of y.T (vertical filter == horizontal on transpose).
        np.testing.assert_array_equal(sf[2::4, 0::4], sf_t[0::4, 2::4].T)

    def test_quarter_positions_are_averages(self, rng):
        y = rng.integers(0, 256, (32, 32), dtype=np.uint8)
        sf = interpolate_plane(y)
        g = sf[0::4, 0::4].astype(np.uint16)
        b = sf[0::4, 2::4].astype(np.uint16)
        np.testing.assert_array_equal(sf[0::4, 1::4], (g + b + 1) >> 1)
        h = sf[2::4, 0::4].astype(np.uint16)
        np.testing.assert_array_equal(sf[1::4, 0::4], (g + h + 1) >> 1)
        j = sf[2::4, 2::4].astype(np.uint16)
        np.testing.assert_array_equal(sf[2::4, 1::4], (h + j + 1) >> 1)


class TestBandExactness:
    @given(
        row0=st.integers(min_value=0, max_value=3),
        nrows=st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=24, deadline=None)
    def test_band_equals_plane_rows(self, row0, nrows):
        """Distributed INT must be bit-exact with full-plane interpolation."""
        if row0 + nrows > 4:
            nrows = 4 - row0
        rng = np.random.default_rng(7)
        y = rng.integers(0, 256, (64, 48), dtype=np.uint8)
        full = interpolate_plane(y)
        band = interpolate_rows(y, row0, nrows)
        np.testing.assert_array_equal(
            band, full[64 * row0 : 64 * (row0 + nrows), :]
        )

    def test_stitched_bands_equal_plane(self, rng):
        y = rng.integers(0, 256, (96, 32), dtype=np.uint8)
        full = interpolate_plane(y)
        stitched = np.concatenate(
            [interpolate_rows(y, 0, 2), interpolate_rows(y, 2, 1),
             interpolate_rows(y, 3, 3)],
            axis=0,
        )
        np.testing.assert_array_equal(stitched, full)

    def test_band_out_of_range(self, rng):
        y = rng.integers(0, 256, (64, 32), dtype=np.uint8)
        with pytest.raises(ValueError):
            interpolate_rows(y, 3, 2)

    def test_pad_constant_documented(self):
        assert PAD == 4  # 6-tap reach + the +1 quarter-pel neighbour


class TestSampling:
    def test_subpel_block_at_integer_position(self, rng):
        y = rng.integers(0, 256, (32, 32), dtype=np.uint8)
        sf = interpolate_plane(y)
        blk = subpel_block(sf, 4 * 8, 4 * 4, 8, 8)
        np.testing.assert_array_equal(blk, y[8:16, 4:12])

    def test_subpel_block_fractional(self, rng):
        y = rng.integers(0, 256, (32, 32), dtype=np.uint8)
        sf = interpolate_plane(y)
        blk = subpel_block(sf, 4 * 8 + 2, 4 * 4, 4, 4)
        np.testing.assert_array_equal(blk, sf[34 : 34 + 16 : 4, 16 : 16 + 16 : 4])

    def test_clamp_qpos(self):
        assert clamp_qpos(-3, 5, 8, 8, 32, 32) == (0, 5)
        assert clamp_qpos(4 * 30, 4 * 30, 8, 8, 32, 32) == (4 * 24, 4 * 24)
        assert clamp_qpos(10, 10, 8, 8, 32, 32) == (10, 10)
