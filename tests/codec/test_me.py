"""FSBM Motion Estimation: exactness, determinism, multi-reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec.config import CodecConfig
from repro.codec.me import MotionField, motion_estimate_rows
from repro.codec.frames import pad_plane


def shifted(ref: np.ndarray, dy: int, dx: int) -> np.ndarray:
    """Current frame whose content at (y,x) equals ref at (y+dy, x+dx)."""
    h, w = ref.shape
    pad = max(abs(dy), abs(dx))
    p = np.pad(ref, pad, mode="wrap")
    return p[pad + dy : pad + dy + h, pad + dx : pad + dx + w].copy()


@pytest.fixture
def cfg64():
    return CodecConfig(width=64, height=64, search_range=6, num_ref_frames=1)


class TestFullSearchExactness:
    @given(
        dy=st.integers(min_value=-6, max_value=6),
        dx=st.integers(min_value=-6, max_value=6),
    )
    @settings(max_examples=20, deadline=None)
    def test_finds_planted_translation(self, dy, dx):
        """Full search must recover any translation within the SA exactly."""
        rng = np.random.default_rng(1)
        ref = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        cur = shifted(ref, dy, dx)
        cfg = CodecConfig(width=64, height=64, search_range=6)
        f = motion_estimate_rows(cur, [ref], 0, 4, cfg)
        # Interior MBs (away from wrap artifacts) must find (dy, dx) with SAD 0.
        inner = f.mvs[(16, 16)][1:-1, 1:-1, 0, :]
        sads = f.sads[(16, 16)][1:-1, 1:-1, 0]
        assert (sads == 0).all()
        assert (inner[..., 0] == dy).all()
        assert (inner[..., 1] == dx).all()

    def test_zero_motion_on_identical_frames(self, rng, cfg64):
        ref = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        f = motion_estimate_rows(ref, [ref], 0, 4, cfg64)
        for shape in f.mode_shapes:
            assert (f.sads[shape] == 0).all()
            assert (f.mvs[shape] == 0).all()

    def test_subpartitions_track_independent_motion(self, rng):
        """Two halves of an MB moving differently get different (8,16) MVs."""
        ref = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        cur = ref.copy()
        # Shift only the top half of MB (1,1) by (0, 2).
        cur[16:24, 16:32] = ref[16:24, 18:34]
        cfg = CodecConfig(width=64, height=64, search_range=4)
        f = motion_estimate_rows(cur, [ref], 1, 1, cfg)
        top_mv = f.mvs[(8, 16)][0, 1, 0]  # (h=8, w=16): top / bottom halves
        bot_mv = f.mvs[(8, 16)][0, 1, 1]
        assert tuple(top_mv) == (0, 2)
        assert tuple(bot_mv) == (0, 0)

    def test_sad_never_worse_than_zero_mv(self, rng, cfg64):
        ref = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        cur = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        f = motion_estimate_rows(cur, [ref], 0, 4, cfg64)
        from repro.codec.sad import sad

        for r in range(4):
            for c in range(4):
                zero_sad = sad(
                    cur[16 * r : 16 * r + 16, 16 * c : 16 * c + 16],
                    ref[16 * r : 16 * r + 16, 16 * c : 16 * c + 16],
                )
                assert f.sads[(16, 16)][r, c, 0] <= zero_sad


class TestMultiReference:
    def test_best_reference_selected(self, rng):
        """A frame identical to ref1 (not ref0) must pick ref index 1."""
        ref0 = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        ref1 = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        cfg = CodecConfig(width=64, height=64, search_range=4, num_ref_frames=2)
        f = motion_estimate_rows(ref1, [ref0, ref1], 0, 4, cfg)
        assert (f.refs[(16, 16)] == 1).all()
        assert (f.sads[(16, 16)] == 0).all()

    def test_ties_prefer_earlier_reference(self, rng):
        ref = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        cfg = CodecConfig(width=64, height=64, search_range=4, num_ref_frames=2)
        f = motion_estimate_rows(ref, [ref, ref], 0, 4, cfg)
        assert (f.refs[(16, 16)] == 0).all()

    def test_ref_limit_respected(self, rng):
        ref0 = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        ref1 = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        cfg = CodecConfig(width=64, height=64, search_range=4, num_ref_frames=1)
        # ref1 matches cur exactly but is beyond the configured limit.
        f = motion_estimate_rows(ref1, [ref0, ref1], 0, 4, cfg)
        assert (f.refs[(16, 16)] == 0).all()


class TestBandsAndMerge:
    def test_band_matches_full_frame(self, rng, cfg64):
        ref = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        cur = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        full = motion_estimate_rows(cur, [ref], 0, 4, cfg64)
        band = motion_estimate_rows(cur, [ref], 1, 2, cfg64)
        for shape in full.mode_shapes:
            np.testing.assert_array_equal(band.mvs[shape], full.mvs[shape][1:3])
            np.testing.assert_array_equal(band.sads[shape], full.sads[shape][1:3])

    def test_merge_reassembles_full_field(self, rng, cfg64):
        ref = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        cur = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        full = motion_estimate_rows(cur, [ref], 0, 4, cfg64)
        parts = [
            motion_estimate_rows(cur, [ref], 0, 1, cfg64),
            motion_estimate_rows(cur, [ref], 1, 2, cfg64),
            motion_estimate_rows(cur, [ref], 3, 1, cfg64),
        ]
        merged = MotionField.merge(parts)
        for shape in full.mode_shapes:
            np.testing.assert_array_equal(merged.mvs[shape], full.mvs[shape])
            np.testing.assert_array_equal(merged.refs[shape], full.refs[shape])

    def test_merge_rejects_gap(self, rng, cfg64):
        ref = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        cur = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        a = motion_estimate_rows(cur, [ref], 0, 1, cfg64)
        c = motion_estimate_rows(cur, [ref], 2, 1, cfg64)
        with pytest.raises(ValueError, match="contiguous"):
            MotionField.merge([a, c])

    def test_merge_empty_rejected(self):
        with pytest.raises(ValueError):
            MotionField.merge([])

    def test_zero_rows_band(self, rng, cfg64):
        ref = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        cur = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        f = motion_estimate_rows(cur, [ref], 2, 0, cfg64)
        assert f.nrows == 0
        assert f.mvs[(16, 16)].shape[0] == 0


class TestValidation:
    def test_band_out_of_range(self, rng, cfg64):
        ref = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        with pytest.raises(ValueError):
            motion_estimate_rows(ref, [ref], 3, 2, cfg64)

    def test_requires_reference(self, rng, cfg64):
        cur = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        with pytest.raises(ValueError):
            motion_estimate_rows(cur, [], 0, 1, cfg64)

    def test_prepadded_path_matches(self, rng, cfg64):
        ref = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        cur = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        a = motion_estimate_rows(cur, [ref], 0, 4, cfg64)
        padded = pad_plane(ref, cfg64.search_range)
        b = motion_estimate_rows(cur, [padded], 0, 4, cfg64, refs_prepadded=True)
        for shape in a.mode_shapes:
            np.testing.assert_array_equal(a.mvs[shape], b.mvs[shape])

    def test_wrong_prepadded_shape(self, rng, cfg64):
        ref = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        with pytest.raises(ValueError, match="pre-padded"):
            motion_estimate_rows(ref, [ref], 0, 1, cfg64, refs_prepadded=True)
