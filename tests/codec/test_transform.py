"""TQ/TQ⁻¹: transform algebra and quantization round-trip bounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.codec.quant import quant_step
from repro.codec.transform import (
    CF,
    blocks_to_plane,
    chroma_dc_dequantize,
    chroma_dc_quantize,
    dequantize,
    forward_transform,
    hadamard2x2,
    inverse_transform,
    itq,
    plane_to_blocks,
    quantize,
    tq,
)

resid = st.integers(min_value=-255, max_value=255)


class TestBlockReshaping:
    def test_roundtrip(self, rng):
        p = rng.integers(-100, 100, (16, 24)).astype(np.int64)
        blocks = plane_to_blocks(p)
        assert blocks.shape == (24, 4, 4)
        np.testing.assert_array_equal(blocks_to_plane(blocks, 16, 24), p)

    def test_block_order_raster(self):
        p = np.zeros((8, 8), dtype=np.int64)
        p[0:4, 4:8] = 5
        blocks = plane_to_blocks(p)
        assert (blocks[1] == 5).all()
        assert (blocks[0] == 0).all()

    def test_alignment_required(self):
        with pytest.raises(ValueError):
            plane_to_blocks(np.zeros((6, 8), dtype=np.int64))
        with pytest.raises(ValueError):
            blocks_to_plane(np.zeros((4, 4, 4), dtype=np.int64), 8, 6)

    def test_count_mismatch(self):
        with pytest.raises(ValueError):
            blocks_to_plane(np.zeros((3, 4, 4), dtype=np.int64), 8, 8)


class TestCoreTransform:
    def test_dc_of_constant_block(self):
        x = np.full((1, 4, 4), 10, dtype=np.int64)
        w = forward_transform(x)
        assert w[0, 0, 0] == 160  # 16 * 10
        assert np.abs(w[0]).sum() == 160  # all AC zero

    def test_matches_matrix_definition(self, rng):
        x = rng.integers(-50, 50, (3, 4, 4)).astype(np.int64)
        w = forward_transform(x)
        for k in range(3):
            np.testing.assert_array_equal(w[k], CF @ x[k] @ CF.T)

    def test_inverse_without_quant_recovers_input(self, rng):
        """IT(T(x)) with no quantization must reproduce x exactly.

        The pair is scaled such that the inverse's (…+32)>>6 rounding undoes
        the forward gain when coefficients are unquantized *and* rescaled by
        the dequant tables at QP where MF·V = 2^15 — instead we check the
        self-consistent path at QP=0 stays within 1.
        """
        x = rng.integers(-255, 255, (8, 4, 4)).astype(np.int64)
        recon = itq(tq(x, qp=0), qp=0)
        assert np.abs(recon - x).max() <= 1


class TestQuantization:
    @given(arrays(np.int64, (2, 4, 4), elements=resid),
           st.integers(min_value=0, max_value=51))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_error_bounded_by_step(self, x, qp):
        """|TQ⁻¹(TQ(x)) − x| must stay within ~1 quantizer step."""
        recon = itq(tq(x, qp), qp)
        # Dead-zone quantization (inter offset Qstep/6) plus non-orthonormal
        # basis norms keep the worst pixel error under ~2.3 Qstep
        # (measured across all QPs); assert 2.5 with rounding slack.
        bound = 2.5 * quant_step(qp) + 2.0
        assert np.abs(recon - x).max() <= bound

    def test_zero_block_codes_to_zero(self):
        z = tq(np.zeros((1, 4, 4), dtype=np.int64), qp=28)
        assert (z == 0).all()
        assert (itq(z, 28) == 0).all()

    def test_higher_qp_coarser(self, rng):
        x = rng.integers(-200, 200, (4, 4, 4)).astype(np.int64)
        fine = np.abs(tq(x, qp=10)).sum()
        coarse = np.abs(tq(x, qp=40)).sum()
        assert coarse < fine

    def test_intra_deadzone_wider(self, rng):
        x = rng.integers(-30, 30, (16, 4, 4)).astype(np.int64)
        w = forward_transform(x)
        intra = np.abs(quantize(w, 28, intra=True)).sum()
        inter = np.abs(quantize(w, 28, intra=False)).sum()
        assert intra >= inter  # larger f rounds more magnitudes up? no: f widens
        # The intra offset (2^qbits/3) is *larger*, so it rounds up more often.

    def test_quantize_sign_symmetry(self, rng):
        x = rng.integers(-200, 200, (4, 4, 4)).astype(np.int64)
        w = forward_transform(x)
        np.testing.assert_array_equal(quantize(w, 28, False), -quantize(-w, 28, False))

    def test_dequantize_scales_with_qp_period(self):
        lv = np.ones((1, 4, 4), dtype=np.int32)
        a = dequantize(lv, 10)
        b = dequantize(lv, 16)  # +6 QP = exactly one doubling
        np.testing.assert_array_equal(b, 2 * a)

    def test_qp_range_checked(self):
        x = np.zeros((1, 4, 4), dtype=np.int64)
        with pytest.raises(ValueError):
            tq(x, qp=52)
        with pytest.raises(ValueError):
            inverse_transform(dequantize(x.astype(np.int32), -1))


class TestChromaDC:
    def test_hadamard_selfinverse_up_to_scale(self, rng):
        dc = rng.integers(-500, 500, (5, 2, 2)).astype(np.int64)
        twice = hadamard2x2(hadamard2x2(dc))
        np.testing.assert_array_equal(twice, 4 * dc)

    @given(arrays(np.int64, (3, 2, 2),
                  elements=st.integers(min_value=-2000, max_value=2000)),
           st.integers(min_value=0, max_value=51))
    @settings(max_examples=40, deadline=None)
    def test_dc_roundtrip_at_dequantized_scale(self, dc, qp):
        """Hadamard+quant → Hadamard+rescale ≈ 4× identity.

        chroma_dc_dequantize returns values at the dequantized-coefficient
        scale consumed by inverse_transform (4× the forward output, matching
        dequantize() for AC) — see the pipeline-level test in
        tests/codec/test_residual.py for the end-to-end bound.
        """
        z = chroma_dc_quantize(hadamard2x2(dc), qp, intra=False)
        recon = chroma_dc_dequantize(hadamard2x2(z), qp)
        bound = 4 * (32 * quant_step(qp) + 32)
        assert np.abs(recon - 4 * dc).max() <= bound
