"""Smoke tests: the shipped examples must run end to end."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str) -> None:
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart")
        out = capsys.readouterr().out
        assert "bit-exact" in out

    def test_multi_gpu_scaling(self, capsys):
        run_example("multi_gpu_scaling")
        out = capsys.readouterr().out
        assert "SysNFF" in out and "speedup" in out

    def test_adaptive_under_load(self, capsys):
        run_example("adaptive_under_load")
        out = capsys.readouterr().out
        assert "sustained CPU load" in out

    def test_custom_platform(self, capsys):
        run_example("custom_platform")
        out = capsys.readouterr().out
        assert "R* mapped" in out and "utilization" in out

    def test_encode_yuv_file(self, capsys, tmp_path, monkeypatch):
        from repro.video.generator import moving_objects_sequence
        from repro.video.yuv import write_yuv420

        src = tmp_path / "in.yuv"
        write_yuv420(src, moving_objects_sequence(width=96, height=80, count=4))
        monkeypatch.setattr(
            sys, "argv", ["encode_yuv_file.py", str(src), "96", "80"]
        )
        run_example("encode_yuv_file")
        out = capsys.readouterr().out
        assert "partition-mode usage" in out

    def test_fault_tolerance(self, capsys):
        run_example("fault_tolerance")
        out = capsys.readouterr().out
        assert "re-admitted" in out
        assert "2-device steady state" in out
        assert "post-dropout frame time" in out

    def test_multi_stream_service(self, capsys):
        run_example("multi_stream_service")
        out = capsys.readouterr().out
        assert "broadcast mix on SysHK" in out
        assert "deadline-miss rate" in out
        assert "every session saw the dropout" in out

    def test_fleet_serving(self, capsys):
        run_example("fleet_serving")
        out = capsys.readouterr().out
        assert "n0 drops out" in out
        assert "rerouted off n0" in out
        assert "CLEAN" in out

    def test_streaming_pipeline(self, capsys):
        run_example("streaming_pipeline")
        out = capsys.readouterr().out
        assert "LOST -> concealed" in out
        assert "scene cut" in out

    @pytest.mark.slow
    def test_rd_curves(self, capsys):
        run_example("rd_curves")
        out = capsys.readouterr().out
        assert "BD-rate" in out
