"""Scheduling fast path: warm-start LP, characterization caches, and the
stale-state bugfix sweep around eviction/re-admission.

The end-to-end bit-identity of every optimization is property-tested in
``tests/sanitizers/test_fast_path_equivalence.py``; these tests pin the
mechanisms — cache hits actually happen, version counters actually bump,
live-set changes actually clear the per-frame caches — and the satellite
bugfix: a fault-then-readmit run must make bit-identical decisions to a
cold solver, which only holds if eviction/re-admission invalidates the
warm-start state.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codec.config import CodecConfig
from repro.core.config import FrameworkConfig
from repro.core.framework import FevesFramework
from repro.core.load_balancing import LoadBalancer, LPSolveCache
from repro.core.perf_model import PerformanceCharacterization
from repro.hw.noise import FaultEvent, FaultSchedule
from repro.hw.presets import get_platform

CFG = CodecConfig(width=704, height=576)  # 4CIF keeps runs fast

EXACT = dict(lb_cache_rtol=0.0, lp_warm_start=True, char_cache=True,
             des_fast=True)
COLD = dict(lb_cache_rtol=0.0, lp_warm_start=False, char_cache=False,
            des_fast=False)


def run(platform="SysHK", frames=8, faults=None, **fw_kwargs):
    fw = FevesFramework(
        get_platform(platform), CFG,
        FrameworkConfig(faults=faults or FaultSchedule(), **fw_kwargs),
    )
    for _ in range(frames):
        fw.encode_next_inter()
    return fw


def decisions(fw):
    return [
        (r.decision.m.rows, r.decision.l.rows, r.decision.s.rows,
         r.timeline.tau1, r.timeline.tau2, r.timeline.tau_tot)
        for r in fw.reports
    ]


class TestLPSolveCache:
    def tiny_lp(self):
        # minimize x  s.t.  x >= 0.5,  x + y = 1
        c = np.array([1.0, 0.0])
        a_ub = np.array([[-1.0, 0.0]])
        b_ub = np.array([-0.5])
        a_eq = np.array([[1.0, 1.0]])
        b_eq = np.array([1.0])
        bounds = [(0.0, None), (0.0, None)]
        return c, a_ub, b_ub, a_eq, b_eq, bounds

    def test_hit_returns_the_same_solution_object(self):
        cache = LPSolveCache()
        x1 = cache.solve(*self.tiny_lp())
        x2 = cache.solve(*self.tiny_lp())
        assert (cache.misses, cache.hits) == (1, 1)
        assert x2 is x1  # bit-identical by construction
        assert x1 is not None and x1[0] == pytest.approx(0.5)
        assert not x1.flags.writeable

    def test_distinct_systems_are_not_conflated(self):
        cache = LPSolveCache()
        c, a_ub, b_ub, a_eq, b_eq, bounds = self.tiny_lp()
        x1 = cache.solve(c, a_ub, b_ub, a_eq, b_eq, bounds)
        x2 = cache.solve(c, a_ub, np.array([-0.75]), a_eq, b_eq, bounds)
        assert cache.misses == 2 and cache.hits == 0
        assert x1 is not None and x2 is not None
        assert x1[0] != x2[0]

    def test_fifo_eviction_bounds_the_table(self):
        cache = LPSolveCache(max_entries=1)
        c, a_ub, b_ub, a_eq, b_eq, bounds = self.tiny_lp()
        cache.solve(c, a_ub, b_ub, a_eq, b_eq, bounds)
        cache.solve(c, a_ub, np.array([-0.75]), a_eq, b_eq, bounds)  # evicts
        cache.solve(c, a_ub, b_ub, a_eq, b_eq, bounds)  # miss again
        assert cache.misses == 3 and cache.hits == 0

    def test_infeasible_cached_as_none(self):
        cache = LPSolveCache()
        c, a_ub, _, a_eq, b_eq, bounds = self.tiny_lp()
        bad = np.array([-2.0])  # x >= 2 contradicts x + y = 1, y >= 0
        assert cache.solve(c, a_ub, bad, a_eq, b_eq, bounds) is None
        assert cache.solve(c, a_ub, bad, a_eq, b_eq, bounds) is None
        assert (cache.misses, cache.hits) == (1, 1)


class TestWarmStart:
    def test_steady_state_hits_the_cache(self):
        fw = run(**EXACT)
        cache = fw.balancer.lp_cache
        assert cache is not None
        assert cache.hits > 0, "steady state never reused an LP solve"

    def test_cold_config_has_no_cache(self):
        fw = run(frames=3, **COLD)
        assert fw.balancer.lp_cache is None

    def test_note_live_set_change_clears_warm_state(self):
        fw = run(frames=6, **EXACT)
        b = fw.balancer
        assert b._cache_decision is not None  # steady state reached
        b.note_live_set_change()
        assert b._cache_decision is None
        assert b._cache_ks is None
        assert b._cache_key is None
        assert b._seed is None
        assert b._lp_converged is False

    def test_shared_cache_adoption_respects_flag(self):
        shared = LPSolveCache()
        fast = LoadBalancer(get_platform("SysHK"), CFG,
                            FrameworkConfig(**EXACT))
        fast.use_lp_cache(shared)
        assert fast.lp_cache is shared
        cold = LoadBalancer(get_platform("SysHK"), CFG,
                            FrameworkConfig(**COLD))
        cold.use_lp_cache(shared)
        assert cold.lp_cache is None  # warm start disabled: stays cold


class TestCharacterizationVersioning:
    def test_version_bumps_on_observations_and_invalidation(self):
        perf = PerformanceCharacterization()
        v0 = perf.version
        perf.observe_compute("dev", "me", rows=10, seconds=0.01)
        v1 = perf.version
        assert v1 > v0
        perf.observe_transfer("dev", "h2d", nbytes=1e6, seconds=1e-3)
        v2 = perf.version
        assert v2 > v1
        perf.invalidate("dev")
        assert perf.version > v2

    def test_invalidate_unknown_device_does_not_bump(self):
        perf = PerformanceCharacterization()
        v0 = perf.version
        perf.invalidate("ghost")
        assert perf.version == v0

    def test_kt_cache_tracks_perf_version(self):
        perf = PerformanceCharacterization()
        perf.observe_transfer("GPU_K", "h2d", nbytes=1e9, seconds=1.0)
        b = LoadBalancer(get_platform("SysHK"), CFG, FrameworkConfig(**EXACT))
        k1 = b._kt_lookup(perf)("GPU_K", "rf", "h2d")
        assert k1 is not None and k1 > 0
        # alpha=1.0: a new observation replaces the estimate outright;
        # halving the bandwidth must double the per-row transfer K.
        perf.observe_transfer("GPU_K", "h2d", nbytes=1e9, seconds=2.0)
        k2 = b._kt_lookup(perf)("GPU_K", "rf", "h2d")
        assert k2 == pytest.approx(2 * k1)

    def test_kt_cache_disabled_without_flag(self):
        perf = PerformanceCharacterization()
        perf.observe_transfer("GPU_K", "h2d", nbytes=1e9, seconds=1.0)
        b = LoadBalancer(get_platform("SysHK"), CFG, FrameworkConfig(**COLD))
        assert b._kt_lookup(perf)("GPU_K", "rf", "h2d") is not None
        assert b._kt_cache == {}  # nothing memoized on the cold path


class TestFaultThenReadmit:
    """The satellite bugfix: eviction/re-admission must not leak stale
    warm-start state into post-fault decisions."""

    HANG = FaultSchedule(events=(
        FaultEvent(frame=3, device="GPU_K", kind="hang", duration=2),
    ))

    def test_hang_readmit_bit_identical_to_cold_solver(self):
        fast = run(frames=9, faults=self.HANG, **EXACT)
        cold = run(frames=9, faults=self.HANG, **COLD)
        assert decisions(fast) == decisions(cold)
        assert list(fast.fault_log) == list(cold.fault_log)
        # The fault actually happened (otherwise this test is vacuous)...
        assert any(e.evicted for e in fast.fault_log)
        assert any(e.readmitted for e in fast.fault_log)
        # ...and the fast path actually engaged its caches.
        assert fast.balancer.lp_cache is not None
        assert fast.balancer.lp_cache.hits > 0

    def test_dropout_bit_identical_to_cold_solver(self):
        faults = FaultSchedule(events=(
            FaultEvent(frame=3, device="GPU_K", kind="dropout"),
        ))
        fast = run(frames=7, faults=faults, **EXACT)
        cold = run(frames=7, faults=faults, **COLD)
        assert decisions(fast) == decisions(cold)
        assert list(fast.fault_log) == list(cold.fault_log)
