"""Data Access Management: transfer plans and cross-frame buffer state."""

import pytest

from repro.baselines.oracle import ground_truth_perf
from repro.codec.config import CodecConfig
from repro.core.config import FrameworkConfig
from repro.core.data_access import DataAccessManager, TransferItem
from repro.core.load_balancing import LoadBalancer
from repro.hw.interconnect import BufferSizes
from repro.hw.presets import get_platform

CFG = CodecConfig(width=1920, height=1088, search_range=16, num_ref_frames=1)
SIZES = BufferSizes(width=CFG.width, height=CFG.height)


def make_dam(platform_name="SysNFF"):
    platform = get_platform(platform_name)
    dam = DataAccessManager(platform, SIZES)
    balancer = LoadBalancer(platform, CFG, FrameworkConfig())
    perf = ground_truth_perf(platform, CFG, active_refs=1)
    gpus = [d.name for d in platform.gpus]
    rstar = gpus[0]
    decision = balancer.solve(
        perf, rstar, {g: g != rstar for g in gpus}, {g: 0 for g in gpus}
    )
    return platform, dam, decision, rstar


class TestTransferItem:
    def test_validation(self):
        with pytest.raises(ValueError):
            TransferItem("d", "cf", "sideways", 1, 10, 1, "x")
        with pytest.raises(ValueError):
            TransferItem("d", "cf", "h2d", 1, 10, 9, "x")
        with pytest.raises(ValueError):
            TransferItem("d", "cf", "h2d", -1, 10, 1, "x")


class TestPlan:
    def test_phases_and_buffers(self):
        platform, dam, decision, rstar = make_dam()
        plan = dam.plan(decision, rstar)
        for item in plan.items:
            assert item.phase in (1, 2, 3)
            assert item.buffer in ("cf", "cf_full", "rf", "sf", "mv")

    def test_cpu_has_no_transfers(self):
        platform, dam, decision, rstar = make_dam()
        plan = dam.plan(decision, rstar)
        assert plan.for_device("CPU_N") == []

    def test_first_frame_everyone_needs_rf(self):
        platform, dam, decision, rstar = make_dam()
        plan = dam.plan(decision, rstar)
        for gpu in ("GPU_F", "GPU_F2"):
            rf_items = [
                t for t in plan.for_device(gpu, phase=1) if t.buffer == "rf"
            ]
            assert len(rf_items) == 1 and rf_items[0].rows == 68

    def test_rstar_device_skips_rf_after_commit(self):
        platform, dam, decision, rstar = make_dam()
        dam.commit(decision, rstar)
        assert dam.needs_rf()[rstar] is False
        assert dam.needs_rf()["GPU_F2"] is True
        plan = dam.plan(decision, rstar)
        assert not any(t.buffer == "rf" and t.direction == "h2d"
                       for t in plan.for_device(rstar))

    def test_rstar_device_phase3_sends_rf_back(self):
        platform, dam, decision, rstar = make_dam()
        plan = dam.plan(decision, rstar)
        back = [
            t for t in plan.for_device(rstar, phase=3) if t.direction == "d2h"
        ]
        assert len(back) == 1
        assert back[0].buffer == "rf" and back[0].rows == 68

    def test_rstar_gets_mc_inputs_in_phase2(self):
        platform, dam, decision, rstar = make_dam()
        plan = dam.plan(decision, rstar)
        labels = {t.label for t in plan.for_device(rstar, phase=2)}
        assert "CF->MC" in labels or decision.m.rows[0] + decision.delta_m[0].rows >= 68
        assert "SF->MC" in labels or decision.l.rows[0] + decision.delta_l[0].rows >= 68

    def test_non_rstar_sme_mvs_leave_in_phase2(self):
        platform, dam, decision, rstar = make_dam()
        plan = dam.plan(decision, rstar)
        i2 = [d.name for d in platform.devices].index("GPU_F2")
        if decision.s.rows[i2] > 0:
            mv_out = [
                t
                for t in plan.for_device("GPU_F2", phase=2)
                if t.direction == "d2h" and t.buffer == "mv"
            ]
            assert len(mv_out) == 1
            assert mv_out[0].rows == decision.s.rows[i2]

    def test_bytes_match_rows(self):
        platform, dam, decision, rstar = make_dam()
        plan = dam.plan(decision, rstar)
        from repro.core.perf_model import buffer_row_bytes

        for t in plan.items:
            assert t.nbytes == t.rows * buffer_row_bytes(t.buffer, SIZES)

    def test_total_bytes_by_direction(self):
        platform, dam, decision, rstar = make_dam()
        plan = dam.plan(decision, rstar)
        assert plan.total_bytes("h2d") + plan.total_bytes("d2h") == plan.total_bytes()


class TestSigmaState:
    def test_commit_tracks_sigma_remainder(self):
        platform, dam, decision, rstar = make_dam()
        dam.commit(decision, rstar)
        for name, rem in dam.sigma_r_rows.items():
            if name == rstar:
                assert rem == 0
            else:
                expected = decision.sigma_r.get(name)
                assert rem == (expected.rows if expected else 0)

    def test_sigma_r_transferred_next_frame(self):
        platform, dam, decision, rstar = make_dam()
        dam.commit(decision, rstar)
        other = "GPU_F2"
        backlog = dam.sigma_r_rows[other]
        plan = dam.plan(decision, rstar)
        catchup = [
            t
            for t in plan.for_device(other, phase=1)
            if t.buffer == "sf" and t.direction == "h2d"
        ]
        total = sum(t.rows for t in catchup)
        assert total == backlog or backlog == 0

    def test_cpu_centric_commit_clears_holder(self):
        platform, dam, decision, _ = make_dam("SysNF")
        dam.commit(decision, "CPU_N")
        assert dam.rf_holder is None
        assert dam.needs_rf()["GPU_F"] is True
