"""MS_BOUNDS / LS_BOUNDS and the σ/σʳ remainder split."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import ls_bounds, ms_bounds, sf_remainder_segments
from repro.core.distribution import Distribution


def dist(*rows):
    return Distribution(rows=tuple(rows), total=sum(rows))


class TestMsBounds:
    def test_identical_bands_no_extra(self):
        m = s = dist(10, 10)
        for i in range(2):
            assert ms_bounds(m, s, i).rows == 0

    def test_shifted_bands(self):
        m = dist(10, 10)   # dev0: [0,10), dev1: [10,20)
        s = dist(6, 14)    # dev0: [0,6),  dev1: [6,20)
        assert ms_bounds(m, s, 0).rows == 0       # [0,6) ⊂ [0,10)
        d1 = ms_bounds(m, s, 1)
        assert d1.rows == 4                       # [6,10) missing
        assert d1.segments == ((6, 10),)

    def test_disjoint_bands_full_fetch(self):
        m = dist(20, 0)
        s = dist(0, 20)
        assert ms_bounds(m, s, 1).rows == 20

    def test_need_on_both_sides(self):
        m = dist(5, 10, 5)   # dev1: [5,15)
        s = dist(2, 16, 2)   # dev1: [2,18)
        d = ms_bounds(m, s, 1)
        assert d.segments == ((2, 5), (15, 18))
        assert d.rows == 6


class TestLsBounds:
    def test_halo_expands_need(self):
        l = s = dist(10, 10)
        # without halo: aligned, no extra.
        assert ls_bounds(l, s, 0, halo=0).rows == 0
        # with halo=2: device 0 needs rows [0,12) but holds [0,10).
        d = ls_bounds(l, s, 0, halo=2)
        assert d.segments == ((10, 12),)
        # device 1 needs [8,20), holds [10,20).
        d1 = ls_bounds(l, s, 1, halo=2)
        assert d1.segments == ((8, 10),)

    def test_halo_clipped_at_frame_edges(self):
        l = s = dist(20)
        assert ls_bounds(l, s, 0, halo=5).rows == 0

    def test_negative_halo_rejected(self):
        with pytest.raises(ValueError):
            ls_bounds(dist(4), dist(4), 0, halo=-1)


class TestSfRemainder:
    def test_full_budget_transfers_everything(self):
        l = dist(10, 10)
        s = dist(10, 10)
        sigma, rem = sf_remainder_segments(l, s, 0, halo=0, budget_rows=100)
        assert sigma.rows == 10  # the other device's band
        assert rem.rows == 0

    def test_zero_budget_defers_everything(self):
        l = dist(10, 10)
        s = dist(10, 10)
        sigma, rem = sf_remainder_segments(l, s, 1, halo=0, budget_rows=0)
        assert sigma.rows == 0
        assert rem.rows == 10

    def test_partial_budget_split(self):
        l = dist(10, 10)
        s = dist(10, 10)
        sigma, rem = sf_remainder_segments(l, s, 0, halo=0, budget_rows=4)
        assert sigma.rows == 4
        assert rem.rows == 6
        assert sigma.segments == ((10, 14),)
        assert rem.segments == ((14, 20),)

    @given(
        l0=st.integers(min_value=0, max_value=20),
        s0=st.integers(min_value=0, max_value=20),
        halo=st.integers(min_value=0, max_value=3),
        budget=st.integers(min_value=0, max_value=25),
    )
    @settings(max_examples=100, deadline=None)
    def test_coverage_invariant(self, l0, s0, halo, budget):
        """own INT band ∪ Δl ∪ σ ∪ σʳ must cover the whole SF exactly."""
        total = 20
        l = dist(l0, total - l0)
        s = dist(s0, total - s0)
        for dev in range(2):
            held = [l.band(dev)]
            held += list(ls_bounds(l, s, dev, halo).segments)
            sigma, rem = sf_remainder_segments(l, s, dev, halo, budget)
            held += list(sigma.segments) + list(rem.segments)
            held = [(a, b) for a, b in held if b > a]
            covered = set()
            for a, b in held:
                for r in range(a, b):
                    assert r not in covered, "segments must not overlap"
                    covered.add(r)
            assert covered == set(range(total))
            assert sigma.rows <= budget
