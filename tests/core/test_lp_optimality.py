"""LP optimality: compare against exhaustive search on a tiny instance.

The Algorithm-2 LP is an approximation of the DES ground truth (it models
engine capacities and critical paths, not the exact interleaving). This
test enumerates *every* integer distribution on a small two-device frame,
executes each through the real DES, and checks that FEVES's converged
schedule is within a few percent of the true optimum.
"""

import itertools

import pytest

from repro.baselines.runner import PolicyRunner
from repro.codec.config import CodecConfig
from repro.core.bounds import ExtraTransfers, ls_bounds, ms_bounds
from repro.core.config import FrameworkConfig
from repro.core.distribution import Distribution
from repro.core.framework import FevesFramework
from repro.core.load_balancing import LoadDecision
from repro.hw.presets import get_platform

#: Tiny frame: full 1080p width (so rates are calibrated) but only 6 MB rows.
CFG = CodecConfig(width=1920, height=96, search_range=16, num_ref_frames=1)
N = CFG.mb_rows  # 6


def static_decision(platform, m0: int, l0: int, s0: int) -> LoadDecision:
    """A fixed decision assigning (m0, l0, s0) rows to device 0 (the GPU)."""
    m = Distribution(rows=(m0, N - m0), total=N)
    l = Distribution(rows=(l0, N - l0), total=N)
    s = Distribution(rows=(s0, N - s0), total=N)
    halo = 2
    empty = ExtraTransfers(segments=(), rows=0)
    return LoadDecision(
        m=m, l=l, s=s,
        delta_m=[
            ms_bounds(m, s, i) if platform.devices[i].is_accelerator else empty
            for i in range(2)
        ],
        delta_l=[
            ls_bounds(l, s, i, halo) if platform.devices[i].is_accelerator else empty
            for i in range(2)
        ],
    )


def run_static(m0: int, l0: int, s0: int) -> float:
    platform = get_platform("SysNF")
    decision = static_decision(platform, m0, l0, s0)
    rstar = "GPU_F"

    def policy(idx, perf):
        return decision, rstar

    runner = PolicyRunner(platform, CFG, policy, FrameworkConfig())
    runner.run(3)
    return runner.trace.frame_times_s[-1]


@pytest.fixture(scope="module")
def exhaustive_best():
    best = None
    best_combo = None
    for m0, l0, s0 in itertools.product(range(N + 1), repeat=3):
        t = run_static(m0, l0, s0)
        if best is None or t < best:
            best, best_combo = t, (m0, l0, s0)
    return best, best_combo


class TestLpVsExhaustive:
    def test_feves_near_global_optimum(self, exhaustive_best):
        """At this toy scale (6 rows) per-transfer latencies and exact queue
        interleavings — which the LP only approximates — are a large
        fraction of the frame, so allow a wider margin than the ~2 % gap
        observed at realistic sizes (see test_local_optimality_at_1080p and
        the oracle comparison in tests/baselines)."""
        best, combo = exhaustive_best
        fw = FevesFramework(get_platform("SysNF"), CFG, FrameworkConfig())
        fw.run_model(8)
        feves = fw.trace.frame_times_s[-1]
        assert feves <= best * 1.18, (
            f"FEVES {feves * 1e3:.3f} ms vs exhaustive best {best * 1e3:.3f} ms "
            f"at {combo}"
        )

    def test_local_optimality_at_1080p(self):
        """At full frame height, no single-module whole-band reassignment
        of ±4 rows between the two devices improves on FEVES's schedule by
        more than 2 %."""
        cfg = CodecConfig(width=1920, height=1088, search_range=16,
                          num_ref_frames=1)
        n = cfg.mb_rows
        platform = get_platform("SysNF")
        fw = FevesFramework(platform, cfg, FrameworkConfig())
        fw.run_model(8)
        feves_t = fw.trace.frame_times_s[-1]
        base = fw.reports[-1].decision
        m0, l0, s0 = base.m.rows[0], base.l.rows[0], base.s.rows[0]

        def run_neighbor(m, l, s) -> float:
            p = get_platform("SysNF")
            md = Distribution(rows=(m, n - m), total=n)
            ld = Distribution(rows=(l, n - l), total=n)
            sd = Distribution(rows=(s, n - s), total=n)
            empty = ExtraTransfers(segments=(), rows=0)
            dec = LoadDecision(
                m=md, l=ld, s=sd,
                delta_m=[ms_bounds(md, sd, 0), empty],
                delta_l=[ls_bounds(ld, sd, 0, 2), empty],
            )
            runner = PolicyRunner(p, cfg, lambda i, pf: (dec, "GPU_F"),
                                  FrameworkConfig())
            runner.run(3)
            return runner.trace.frame_times_s[-1]

        for dm, dl, ds in itertools.product((-4, 0, 4), repeat=3):
            m = min(n, max(0, m0 + dm))
            l = min(n, max(0, l0 + dl))
            s = min(n, max(0, s0 + ds))
            neighbor_t = run_neighbor(m, l, s)
            assert neighbor_t >= feves_t * 0.98, (
                f"neighbor ({m},{l},{s}) beats FEVES: "
                f"{neighbor_t * 1e3:.3f} < {feves_t * 1e3:.3f} ms"
            )

    def test_optimum_uses_both_devices(self, exhaustive_best):
        """Sanity: on this instance heterogeneity must pay off at all."""
        _, (m0, l0, s0) = exhaustive_best
        gpu_only = run_static(N, N, N)
        best, _ = exhaustive_best
        assert best < gpu_only
        assert 0 < m0 <= N  # GPU does some but the CPU contributes somewhere
        assert (m0, l0, s0) != (N, N, N)

    def test_equidistant_is_suboptimal(self, exhaustive_best):
        best, _ = exhaustive_best
        half = N // 2
        equi = run_static(half, half, half)
        assert equi >= best
