"""Orchestration fuzzing: arbitrary distributions must always schedule.

Hypothesis drives the Video Coding Manager + Data Access Management with
random (but valid) load decisions on random platforms; every resulting DES
schedule must satisfy the structural invariants of the paper's Fig. 4 —
whatever the split, however lopsided.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec.config import CodecConfig
from repro.core.bounds import ExtraTransfers, ls_bounds, ms_bounds
from repro.core.coding_manager import VideoCodingManager
from repro.core.config import FrameworkConfig
from repro.core.data_access import DataAccessManager
from repro.core.distribution import Distribution, round_preserving_sum
from repro.core.load_balancing import LoadDecision
from repro.core.perf_model import PerformanceCharacterization
from repro.hw.des import validate_schedule
from repro.hw.interconnect import BufferSizes
from repro.hw.presets import get_platform

CFG = CodecConfig(width=1920, height=1088, search_range=16, num_ref_frames=1)
PLATFORMS = ("SysNF", "SysNFF", "SysHK")


@st.composite
def random_decision(draw, n_devices: int):
    """A random valid LoadDecision for ``n_devices`` devices."""
    n = CFG.mb_rows

    def dist():
        weights = [draw(st.floats(min_value=0.0, max_value=1.0)) for _ in range(n_devices)]
        rows = round_preserving_sum(np.array(weights), n)
        return Distribution(rows=rows, total=n)

    return dist(), dist(), dist()


@st.composite
def fuzz_case(draw):
    platform_name = draw(st.sampled_from(PLATFORMS))
    platform = get_platform(platform_name)
    m, l, s = draw(random_decision(len(platform.devices)))
    rstar_idx = draw(st.integers(min_value=0, max_value=len(platform.devices) - 1))
    return platform, m, l, s, platform.devices[rstar_idx].name


def build_decision(platform, m, l, s) -> LoadDecision:
    halo = 2
    empty = ExtraTransfers(segments=(), rows=0)
    d = len(platform.devices)
    return LoadDecision(
        m=m, l=l, s=s,
        delta_m=[
            ms_bounds(m, s, i) if platform.devices[i].is_accelerator else empty
            for i in range(d)
        ],
        delta_l=[
            ls_bounds(l, s, i, halo) if platform.devices[i].is_accelerator else empty
            for i in range(d)
        ],
    )


class TestOrchestrationFuzz:
    @given(fuzz_case())
    @settings(max_examples=60, deadline=None)
    def test_any_distribution_schedules_validly(self, case):
        platform, m, l, s, rstar = case
        decision = build_decision(platform, m, l, s)
        dam = DataAccessManager(platform, BufferSizes(CFG.width, CFG.height))
        manager = VideoCodingManager(platform, CFG, FrameworkConfig())
        perf = PerformanceCharacterization()
        plan = dam.plan(decision, rstar)
        report = manager.run_frame(
            frame_index=1,
            decision=decision,
            rstar_device=rstar,
            plan=plan,
            active_refs=1,
            perf=perf,
        )
        # Structural invariants of the Fig. 4 schedule:
        validate_schedule(report.timeline.records)
        assert 0 <= report.tau1 <= report.tau2 <= report.tau_tot
        assert report.tau_tot > 0
        # Phase structure: every SME op starts at/after τ1, R* at/after τ2.
        for rec in report.timeline.records:
            if rec.label.startswith("SME["):
                assert rec.start >= report.tau1 - 1e-12
            if rec.label.startswith("R*[") and "probe" not in rec.label:
                assert rec.start >= report.tau2 - 1e-12

    @given(fuzz_case())
    @settings(max_examples=40, deadline=None)
    def test_transfer_plan_invariants(self, case):
        platform, m, l, s, rstar = case
        decision = build_decision(platform, m, l, s)
        dam = DataAccessManager(platform, BufferSizes(CFG.width, CFG.height))
        plan = dam.plan(decision, rstar)
        accel_names = {d.name for d in platform.gpus}
        n = CFG.mb_rows
        for item in plan.items:
            assert item.device in accel_names
            assert 0 < item.rows <= n
            assert item.nbytes > 0
        # Two consecutive frames keep σʳ accounting coherent.
        dam.commit(decision, rstar)
        plan2 = dam.plan(decision, rstar)
        for item in plan2.items:
            assert 0 < item.rows <= n

    @given(fuzz_case())
    @settings(max_examples=30, deadline=None)
    def test_measurements_consistent_with_assignments(self, case):
        platform, m, l, s, rstar = case
        decision = build_decision(platform, m, l, s)
        dam = DataAccessManager(platform, BufferSizes(CFG.width, CFG.height))
        manager = VideoCodingManager(platform, CFG, FrameworkConfig())
        perf = PerformanceCharacterization()
        plan = dam.plan(decision, rstar)
        manager.run_frame(
            frame_index=1, decision=decision, rstar_device=rstar,
            plan=plan, active_refs=1, perf=perf,
        )
        for i, dev in enumerate(platform.devices):
            for module, dist in (("me", m), ("int", l), ("sme", s)):
                k = perf.k_compute(dev.name, module)
                if dist.rows[i] > 0:
                    assert k is not None and k > 0
                else:
                    assert k is None
