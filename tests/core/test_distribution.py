"""Distribution vectors, rounding and interval arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distribution import (
    Distribution,
    missing_segments,
    overlap_rows,
    round_preserving_sum,
)


class TestDistribution:
    def test_sum_enforced(self):
        with pytest.raises(ValueError, match="sums to"):
            Distribution(rows=(3, 3), total=7)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            Distribution(rows=(-1, 8), total=7)

    def test_bands_are_prefix_intervals(self):
        d = Distribution(rows=(3, 0, 5), total=8)
        assert d.bands() == [(0, 3), (3, 3), (3, 8)]

    def test_equidistant_balanced(self):
        d = Distribution.equidistant(68, 3)
        assert sorted(d.rows, reverse=True) == [23, 23, 22]
        assert sum(d.rows) == 68

    def test_equidistant_exact_division(self):
        assert Distribution.equidistant(68, 2).rows == (34, 34)

    def test_single_device(self):
        d = Distribution.single_device(10, 3, 1)
        assert d.rows == (0, 10, 0)
        assert d.band(1) == (0, 10)

    @given(
        total=st.integers(min_value=1, max_value=200),
        n=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_equidistant_properties(self, total, n):
        d = Distribution.equidistant(total, n)
        assert sum(d.rows) == total
        assert max(d.rows) - min(d.rows) <= 1


class TestRounding:
    @given(
        st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=6),
        st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=80, deadline=None)
    def test_rounding_preserves_sum_and_sign(self, fracs, total):
        out = round_preserving_sum(np.array(fracs), total)
        assert sum(out) == total
        assert all(x >= 0 for x in out)

    def test_proportionality(self):
        out = round_preserving_sum(np.array([1.0, 3.0]), 40)
        assert out == (10, 30)

    def test_all_zero_falls_back_to_equidistant(self):
        out = round_preserving_sum(np.array([0.0, 0.0]), 10)
        assert sum(out) == 10

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            round_preserving_sum(np.array([-1.0, 2.0]), 5)

    def test_solver_noise_tolerated(self):
        # HiGHS can return tiny negative values for variables at their
        # zero bound; those must be clamped, not rejected.
        out = round_preserving_sum(np.array([-5e-8, 1.0]), 68)
        assert out == (0, 68)

    def test_zero_total(self):
        assert round_preserving_sum(np.array([2.0, 3.0]), 0) == (0, 0)

    def test_single_entry(self):
        assert round_preserving_sum(np.array([0.37]), 68) == (68,)

    def test_empty_input_zero_total(self):
        assert round_preserving_sum(np.array([]), 0) == ()

    def test_empty_input_nonzero_total_rejected(self):
        with pytest.raises(ValueError):
            round_preserving_sum(np.array([]), 5)

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError):
            round_preserving_sum(np.array([1.0, 2.0]), -1)

    def test_stable_tie_break(self):
        # Equal fractional parts: the leftover row goes to the earliest
        # index, deterministically.
        assert round_preserving_sum(np.array([1.0, 1.0, 1.0]), 4) == (2, 1, 1)
        assert round_preserving_sum(np.array([1.0, 1.0, 1.0, 1.0]), 6) == (
            2, 2, 1, 1,
        )

    @given(
        st.lists(
            st.floats(min_value=-1e-7, max_value=100), min_size=1, max_size=6
        ),
        st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=120, deadline=None)
    def test_degenerate_inputs_preserve_sum(self, fracs, total):
        out = round_preserving_sum(np.array(fracs), total)
        assert len(out) == len(fracs)
        assert sum(out) == total
        assert all(x >= 0 for x in out)

    @given(
        st.lists(st.floats(min_value=0, max_value=50), min_size=2, max_size=6),
        st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=80, deadline=None)
    def test_deterministic(self, fracs, total):
        a = round_preserving_sum(np.array(fracs), total)
        b = round_preserving_sum(np.array(fracs), total)
        assert a == b


class TestIntervals:
    def test_overlap(self):
        assert overlap_rows((0, 5), (3, 8)) == 2
        assert overlap_rows((0, 5), (5, 8)) == 0
        assert overlap_rows((2, 4), (0, 10)) == 2

    def test_missing_segments_no_have(self):
        assert missing_segments((2, 6), (0, 0)) == [(2, 6)]

    def test_missing_segments_covered(self):
        assert missing_segments((2, 6), (0, 10)) == []

    def test_missing_segments_above_and_below(self):
        assert missing_segments((0, 10), (3, 6)) == [(0, 3), (6, 10)]

    def test_missing_segments_partial(self):
        assert missing_segments((0, 5), (3, 9)) == [(0, 3)]
        assert missing_segments((4, 9), (0, 6)) == [(6, 9)]

    def test_empty_need(self):
        assert missing_segments((4, 4), (0, 10)) == []

    @given(
        n0=st.integers(min_value=0, max_value=20),
        n1=st.integers(min_value=0, max_value=20),
        h0=st.integers(min_value=0, max_value=20),
        h1=st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=100, deadline=None)
    def test_missing_plus_overlap_covers_need(self, n0, n1, h0, h1):
        need = (min(n0, n1), max(n0, n1))
        have = (min(h0, h1), max(h0, h1))
        segs = missing_segments(need, have)
        covered = sum(b - a for a, b in segs) + overlap_rows(need, have)
        assert covered == need[1] - need[0]
        for a, b in segs:
            assert need[0] <= a < b <= need[1]
            assert overlap_rows((a, b), have) == 0
