"""Determinism regression: runs must be bit-identical across hash seeds.

Python's string hashing (and therefore every ``set``/``dict``-of-names
iteration order) changes with ``PYTHONHASHSEED``; the DES, the LP and
the fault-rebalancing path must not let that order leak into results.
REP102 flagged three such order-fragile sites (survivor frozensets
feeding the R* fallback's estimates dict, LP parked-device iteration,
utilization-summary accumulation); all were hardened to canonical
iteration orders, and this test pins the end-to-end property so a
future regression — any set order reaching event insertion, candidate
ordering or serialization — fails loudly.

The runner below encodes the same platform/config (with a mid-run
dropout of the R* device and identical surviving GPUs so the R*
re-placement faces a genuine tie, plus a shuffled device-spec
insertion order) in a fresh interpreter per hash seed, then digests
timelines, distributions, fault log and the chrome trace export.  All
digests must be byte-identical.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parents[2] / "src")

# The runner prints a sha256 over every order-sensitive artifact:
# serialized per-frame timelines (records in execution order), final
# distributions, the fault log, the run summary (dict order included),
# and the chrome trace file bytes.
RUNNER = r"""
import hashlib, json, random, sys, tempfile
from pathlib import Path

shuffle_seed = int(sys.argv[1])

from repro.codec.config import CodecConfig
from repro.core.config import FrameworkConfig
from repro.core.framework import FevesFramework
from repro.hw.noise import FaultEvent, FaultSchedule
from repro.hw.presets import get_device_spec
from repro.hw.topology import Platform
from repro.hw.trace_export import export_chrome_trace

# Shuffle the insertion order of the name->spec table the platform is
# assembled from; the canonical device order itself is part of the
# configuration (paper convention: accelerators first, then CPU).
from repro.hw.presets import _gpu_variant  # same-silicon rename helper

gpu = get_device_spec("GPU_F")
entries = [
    ("GPU_F", gpu),
    ("GPU_F2", _gpu_variant(gpu, "GPU_F2")),
    ("GPU_F3", _gpu_variant(gpu, "GPU_F3")),
    ("CPU_N", get_device_spec("CPU_N")),
]
shuffled = list(entries)
random.Random(shuffle_seed).shuffle(shuffled)
by_name = dict(shuffled)  # insertion order perturbed
specs = [by_name[n] for n, _ in entries]
platform = Platform(name="SysNFF", specs=specs)

# Dropping the R* device leaves two *identical* GPUs as candidates:
# the re-placement tie must resolve by canonical device order, never
# by survivor-set iteration order.
faults = FaultSchedule([
    FaultEvent(frame=4, device="GPU_F", kind="dropout"),
])
fw = FevesFramework(
    platform,
    CodecConfig(width=1280, height=720, search_range=16),
    FrameworkConfig(faults=faults),
)
fw.run_model(10)

blob = {
    "timelines": [
        [
            [r.label, r.resource, r.category, repr(r.start), repr(r.end)]
            for r in rep.timeline.records
        ]
        for rep in fw.reports
    ],
    "taus": [
        [repr(rep.tau1), repr(rep.tau2), repr(rep.tau_tot)]
        for rep in fw.reports
    ],
    "distribution": fw.summary()["distribution"],
    "fault_log": [e.to_dict() for e in fw.fault_log],
    "summary_keys_in_order": list(fw.summary()),
    "rstar": fw.rstar_device,
}
with tempfile.TemporaryDirectory() as td:
    trace = Path(td) / "trace.json"
    export_chrome_trace([rep.timeline for rep in fw.reports], trace)
    trace_bytes = trace.read_bytes()

digest = hashlib.sha256(
    json.dumps(blob, sort_keys=False).encode() + trace_bytes
).hexdigest()
print(digest)
"""


def _run(hash_seed: str, shuffle_seed: int) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = SRC
    out = subprocess.run(
        [sys.executable, "-c", RUNNER, str(shuffle_seed)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return out.stdout.strip()


def test_bit_identical_across_hash_seeds_and_insertion_order():
    digests = {
        _run(hash_seed, shuffle_seed)
        for hash_seed, shuffle_seed in [
            ("0", 0),
            ("1", 1),
            ("4242", 2),
        ]
    }
    assert len(digests) == 1, (
        "timelines/distributions/trace exports differ across "
        f"PYTHONHASHSEED or insertion order: {digests}"
    )


def test_repeat_run_same_seed_is_identical():
    assert _run("7", 0) == _run("7", 0)


# The fleet layer adds its own order-sensitive surfaces: routing
# tie-breaks, the global FIFO queue, fault-eviction survivor ordering
# and the per-platform LP-cache registry. The runner shuffles the
# insertion order of the node-spec table (canonical fleet order itself
# is configuration, exactly like device order above), serves a Poisson
# workload through a mixed fleet with a mid-run node dropout, and
# digests every order-sensitive artifact: per-session timelines per
# node, segment bookkeeping, and the full metrics dict (key order
# included).
CLUSTER_RUNNER = r"""
import hashlib, json, random, sys

shuffle_seed = int(sys.argv[1])

from repro.cluster import (
    Cluster, ClusterConfig, NodeFaultEvent, NodeFaultSchedule, NodeSpec,
)
from repro.service import build_workload

entries = [
    ("n0", "SysHK"),
    ("n1", "SysNF"),
    ("n2", "SysNFF"),
]
shuffled = list(entries)
random.Random(shuffle_seed).shuffle(shuffled)
by_id = {nid: NodeSpec(node_id=nid, platform=p) for nid, p in shuffled}
specs = tuple(by_id[nid] for nid, _ in entries)  # canonical fleet order

wl = build_workload(
    6, n_frames=4, mix="conference", arrival_rate=25.0, seed=9
)
cluster = Cluster(ClusterConfig(
    nodes=specs,
    policy="slack",
    node_faults=NodeFaultSchedule(
        [NodeFaultEvent("n0", at_s=0.12, kind="down")]
    ),
))
metrics = cluster.run(wl)

blob = {
    "metrics": metrics.to_dict(),
    "timelines": [
        [
            session.stream_id,
            [
                [r.label, r.resource, repr(r.start), repr(r.end)]
                for rep in session.framework.reports
                for r in rep.timeline.records
            ],
        ]
        for node in cluster.nodes
        for session in node.service.sessions
    ],
    "segments": [
        [
            st.stream_id,
            [
                [seg.node_id, seg.offset, repr(seg.t_routed),
                 repr(seg.t_evicted), len(seg.session.records)]
                for seg in st.segments
            ],
        ]
        for st in cluster.dispatcher.streams.values()
    ],
}
print(hashlib.sha256(json.dumps(blob, sort_keys=False).encode()).hexdigest())
"""


def _run_cluster(hash_seed: str, shuffle_seed: int) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = SRC
    out = subprocess.run(
        [sys.executable, "-c", CLUSTER_RUNNER, str(shuffle_seed)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return out.stdout.strip()


def test_cluster_bit_identical_across_hash_seeds_and_insertion_order():
    digests = {
        _run_cluster(hash_seed, shuffle_seed)
        for hash_seed, shuffle_seed in [
            ("0", 0),
            ("1", 1),
            ("4242", 2),
        ]
    }
    assert len(digests) == 1, (
        "fleet runs differ across PYTHONHASHSEED or node-spec insertion "
        f"order: {digests}"
    )


# The process execution backend adds one more determinism surface: the
# *encoded output* of a really-parallel run. Wall-clock timelines are
# measured and legitimately vary run to run — but everything the encoder
# emits (bitstream bits, reconstructions, distortion stats, mode
# decisions, reference-window state) must be byte-identical across
# worker counts AND hash seeds, because chunk results are stitched by
# row coordinate, never by completion order. The runner digests every
# encoded artifact plus the final reference window; the measured τs are
# deliberately excluded.
PROCESS_RUNNER = r"""
import hashlib, json, sys

workers = int(sys.argv[1])

from repro.codec.config import CodecConfig
from repro.core.config import FrameworkConfig
from repro.core.framework import FevesFramework
from repro.hw.presets import get_platform
from repro.video.generator import SyntheticSequence

cfg = CodecConfig(width=128, height=96, search_range=8, num_ref_frames=2)
frames = SyntheticSequence(width=128, height=96, seed=13,
                           noise_sigma=1.5).frames(4)
fw = FevesFramework(
    get_platform("SysHK"), cfg,
    FrameworkConfig(compute="real", backend="process", exec_workers=workers),
)
with fw:
    outcomes = fw.encode(frames)

h = hashlib.sha256()
for o in outcomes:
    e = o.encoded
    h.update(json.dumps({
        "index": e.index,
        "is_intra": e.is_intra,
        "bits": e.bits,
        "psnr": repr(e.psnr),
        "modes": sorted((repr(k), v) for k, v in e.mode_histogram.items()),
    }, sort_keys=False).encode())
    for plane in (e.recon.y, e.recon.u, e.recon.v):
        h.update(plane.tobytes())
print(h.hexdigest())
"""


def _run_process_backend(hash_seed: str, workers: int) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = SRC
    out = subprocess.run(
        [sys.executable, "-c", PROCESS_RUNNER, str(workers)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return out.stdout.strip()


def test_process_backend_output_identical_across_seeds_and_workers():
    digests = {
        _run_process_backend(hash_seed, workers)
        for hash_seed, workers in [
            ("0", 1),
            ("1", 2),
            ("4242", 3),
        ]
    }
    assert len(digests) == 1, (
        "process-backend encoded output differs across PYTHONHASHSEED "
        f"or worker count: {digests}"
    )


# The static analyzers are part of the determinism contract too: the
# concurrency layer walks call graphs, taint sets and interval
# environments that are all name-keyed, so a stray set/dict iteration
# would reorder (or flip) findings with the hash seed. Lint JSON over
# the real exec/ sources must be byte-identical across seeds.
REPO_ROOT = str(Path(__file__).resolve().parents[2])


def _run_lint(hash_seed: str) -> tuple[int, str]:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = SRC
    out = subprocess.run(
        [
            sys.executable, "-m", "repro", "lint",
            "--select", "REP2", "--format", "json", "--no-baseline",
            "src/repro/exec",
        ],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    return out.returncode, out.stdout


def test_lint_output_identical_across_hash_seeds():
    results = {_run_lint(seed) for seed in ("0", "1", "4242")}
    assert len(results) == 1, (
        f"REP2xx lint output varies with PYTHONHASHSEED: {results}"
    )
    ((rc, stdout),) = results
    assert rc == 0, f"exec/ sources must lint clean, got:\n{stdout}"
    assert json.loads(stdout) == []


# The protocol layer (REP3xx + SAN-G) repeats the contract on two new
# surfaces: lint findings over typestate/obligation domains (sets of
# states, pending-site tuples, reverse-reachability worklists — all
# name- or position-keyed) and the runtime lifecycle journal itself
# (object labels, sequence numbers, event details). Both must be
# byte-identical across hash seeds.
def _run_lint3(hash_seed: str) -> tuple[int, str]:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = SRC
    out = subprocess.run(
        [
            sys.executable, "-m", "repro", "lint",
            "--select", "REP3", "--format", "json", "--no-baseline",
            "src/repro/cluster", "src/repro/service", "src/repro/core",
        ],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    return out.returncode, out.stdout


def test_protocol_lint_identical_across_hash_seeds():
    results = {_run_lint3(seed) for seed in ("0", "1", "4242")}
    assert len(results) == 1, (
        f"REP3xx lint output varies with PYTHONHASHSEED: {results}"
    )
    ((rc, stdout),) = results
    assert rc == 0, f"runtime sources must lint clean, got:\n{stdout}"
    assert json.loads(stdout) == []


# The SAN-G journal of a real fleet run: labels are assigned in
# first-record order, sequence numbers are dense, and event details are
# stream/node ids — none of which may leak hash-seed-dependent order.
PROTOCOL_RUNNER = r"""
import hashlib, json

from repro.cluster import (
    Cluster, ClusterConfig, NodeFaultEvent, NodeFaultSchedule, NodeSpec,
)
from repro.sanitizers import TimelineSanitizer
from repro.sanitizers.protocols.journal import JOURNAL
from repro.service import build_workload

JOURNAL.reset()
JOURNAL.enable()
wl = build_workload(
    5, n_frames=3, mix="conference", arrival_rate=25.0, seed=9
)
cluster = Cluster(ClusterConfig(
    nodes=(NodeSpec("n0", platform="SysHK"), NodeSpec("n1", platform="SysNF")),
    node_faults=NodeFaultSchedule(
        [NodeFaultEvent("n0", at_s=0.1, kind="down")]
    ),
))
cluster.run(wl)
events = JOURNAL.snapshot()
report = TimelineSanitizer.check_protocols(JOURNAL.drain())
assert report.clean, report.summary()
blob = [e.to_dict() for e in events]
print(hashlib.sha256(json.dumps(blob, sort_keys=False).encode()).hexdigest())
"""


def _run_protocol_journal(hash_seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = SRC
    out = subprocess.run(
        [sys.executable, "-c", PROTOCOL_RUNNER],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return out.stdout.strip()


def test_protocol_journal_identical_across_hash_seeds():
    digests = {_run_protocol_journal(seed) for seed in ("0", "1", "4242")}
    assert len(digests) == 1, (
        f"SAN-G lifecycle journal varies with PYTHONHASHSEED: {digests}"
    )
