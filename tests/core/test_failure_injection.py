"""Failure injection and extreme operating points."""

import numpy as np
import pytest

from repro.codec.config import CodecConfig
from repro.core.config import FrameworkConfig
from repro.core.framework import FevesFramework
from repro.hw.device import DeviceSpec
from repro.hw.interconnect import LinkSpec
from repro.hw.noise import NoiseModel, PerturbationEvent, PerturbationSchedule
from repro.hw.presets import CPU_N, GPU_K, get_platform
from repro.hw.rates import ModuleRates
from repro.hw.topology import Platform

CFG = CodecConfig(width=1920, height=1088, search_range=16, num_ref_frames=1)


class TestExtremeAsymmetry:
    def test_thousandfold_slower_cpu_is_sidelined(self):
        """A uselessly slow device must not drag the system below the fast
        device's solo throughput (the LP may assign it ~nothing)."""
        glacial = DeviceSpec(
            name="glacialCPU",
            kind="cpu",
            rates=ModuleRates(
                me_mb_us=CPU_N.rates.me_mb_us * 1000,
                int_row_us=CPU_N.rates.int_row_us * 1000,
                sme_row_us=CPU_N.rates.sme_row_us * 1000,
                rstar_row_us=CPU_N.rates.rstar_row_us * 1000,
            ),
        )
        platform = Platform(name="lopsided", specs=[GPU_K, glacial])
        fw = FevesFramework(platform, CFG, FrameworkConfig())
        fw.run_model(10)
        solo = FevesFramework(get_platform("GPU_K"), CFG, FrameworkConfig())
        solo.run_model(10)
        assert fw.steady_state_fps() >= 0.95 * solo.steady_state_fps()
        final = fw.reports[-1].decision
        cpu_rows = final.m.rows[1] + final.l.rows[1] + final.s.rows[1]
        assert cpu_rows <= 3  # essentially idle

    def test_crippled_link_pushes_work_off_gpu(self):
        """A near-dead PCIe link makes the GPU not worth feeding."""
        dead_link_gpu = DeviceSpec(
            name="farGPU",
            kind="gpu",
            rates=GPU_K.rates,
            link=LinkSpec(h2d_gbps=0.05, d2h_gbps=0.05, latency_s=1e-3),
        )
        platform = Platform(name="deadlink", specs=[dead_link_gpu, CPU_N])
        fw = FevesFramework(platform, CFG, FrameworkConfig(centric="cpu"))
        fw.run_model(10)
        solo_cpu = FevesFramework(get_platform("CPU_N"), CFG, FrameworkConfig())
        solo_cpu.run_model(10)
        # The system must not collapse far below CPU-only throughput.
        assert fw.steady_state_fps() >= 0.8 * solo_cpu.steady_state_fps()


class TestLpFallbacks:
    def test_heuristic_fallback_on_lp_failure(self, monkeypatch):
        """If linprog dies, the speed-proportional heuristic takes over."""
        import repro.core.load_balancing as lb

        def broken_linprog(*args, **kwargs):
            class R:
                success = False
                x = None
            return R()

        monkeypatch.setattr(lb, "linprog", broken_linprog)
        fw = FevesFramework(get_platform("SysHK"), CFG, FrameworkConfig())
        out = fw.run_model(6)
        for dist in (fw.reports[-1].decision.m, fw.reports[-1].decision.s):
            assert sum(dist.rows) == 68
        assert not fw.reports[-1].decision.used_lp
        # Heuristic still beats the equidistant init frame.
        assert out[-1].time_s < out[0].time_s

    def test_min_rows_per_device_respected(self):
        fw_cfg = FrameworkConfig(min_rows_per_device=2)
        fw = FevesFramework(get_platform("SysNFF"), CFG, fw_cfg)
        fw.run_model(6)
        d = fw.reports[-1].decision
        for dist in (d.m, d.l, d.s):
            assert all(r >= 2 for r in dist.rows)


class TestPathologicalNoise:
    def test_wild_jitter_never_breaks_the_loop(self):
        from repro.hw.noise import GaussianJitter

        fw = FevesFramework(
            get_platform("SysNFF"),
            CFG,
            FrameworkConfig(
                noise=NoiseModel(jitter=GaussianJitter(sigma=0.5, seed=7))
            ),
        )
        out = fw.run_model(30)
        assert all(o.time_s > 0 for o in out)
        for rep in fw.reports:
            assert sum(rep.decision.m.rows) == 68

    def test_simultaneous_multi_device_spikes(self):
        noise = NoiseModel(
            schedule=PerturbationSchedule(
                [
                    PerturbationEvent(frame=5, device="GPU_F", factor=3.0),
                    PerturbationEvent(frame=5, device="CPU_N", factor=3.0),
                ]
            )
        )
        fw = FevesFramework(
            get_platform("SysNF"), CFG, FrameworkConfig(noise=noise)
        )
        out = fw.run_model(10)
        assert out[4].time_s > 1.5 * out[3].time_s   # everything slowed
        assert out[7].time_s == pytest.approx(out[3].time_s, rel=0.05)


class TestTinyGeometry:
    def test_single_mb_row_frame(self):
        """N=1: the LP degenerates gracefully (one device gets the row)."""
        cfg = CodecConfig(width=1920, height=16, search_range=16)
        fw = FevesFramework(get_platform("SysHK"), cfg, FrameworkConfig())
        out = fw.run_model(5)
        for rep in fw.reports:
            assert sum(rep.decision.m.rows) == 1
        assert all(o.time_s > 0 for o in out)

    def test_minimal_frame_real_mode(self):
        """A single 16x16 MB, end to end, collaborative vs reference."""
        from repro.codec.encoder import ReferenceEncoder
        from repro.video.generator import SyntheticSequence

        cfg = CodecConfig(width=32, height=32, search_range=4)
        clip = SyntheticSequence(width=32, height=32, seed=1).frames(3)
        ref = ReferenceEncoder(cfg).encode_sequence(clip)
        fw = FevesFramework(
            get_platform("SysHK"), cfg, FrameworkConfig(compute="real")
        )
        out = fw.encode(clip)
        for r, o in zip(ref, out, strict=True):
            assert o.encoded is not None and r.bits == o.encoded.bits
            np.testing.assert_array_equal(r.recon.y, o.encoded.recon.y)
