"""Periodic intra refresh (GOP) in the framework and reference encoder."""

import numpy as np
import pytest

from repro.codec.config import CodecConfig
from repro.codec.encoder import ReferenceEncoder
from repro.core.config import FrameworkConfig
from repro.core.framework import FevesFramework
from repro.hw.presets import get_platform
from repro.video.generator import SyntheticSequence


@pytest.fixture(scope="module")
def clip():
    return SyntheticSequence(width=128, height=96, seed=29, noise_sigma=1.0).frames(8)


@pytest.fixture(scope="module")
def cfg():
    return CodecConfig(width=128, height=96, search_range=8, num_ref_frames=2)


class TestReferenceEncoderGop:
    def test_intra_cadence(self, cfg, clip):
        enc = ReferenceEncoder(cfg, gop_size=3)
        out = enc.encode_sequence(clip)
        assert [f.is_intra for f in out] == [
            True, False, False, True, False, False, True, False
        ]

    def test_gop_zero_single_intra(self, cfg, clip):
        out = ReferenceEncoder(cfg, gop_size=0).encode_sequence(clip)
        assert sum(f.is_intra for f in out) == 1

    def test_negative_gop_rejected(self, cfg):
        with pytest.raises(ValueError):
            ReferenceEncoder(cfg, gop_size=-1)

    def test_reference_window_resets(self, cfg, clip):
        enc = ReferenceEncoder(cfg, gop_size=4)
        for f in clip[:4]:
            enc.encode_frame(f)
        assert enc.store.num_active == 2  # window filled during GOP 1
        enc.encode_frame(clip[4])         # frame 4: intra refresh
        assert enc.store.num_active == 1  # window reset to the new I frame
        enc.encode_frame(clip[5])         # first P of GOP 2
        assert enc.store.num_active == 2  # refilled by the P reconstruction


class TestFrameworkGop:
    def test_framework_matches_reference_with_gop(self, cfg, clip):
        ref = ReferenceEncoder(cfg, gop_size=4).encode_sequence(clip)
        fw = FevesFramework(
            get_platform("SysNFF"), cfg,
            FrameworkConfig(compute="real", gop_size=4),
        )
        out = fw.encode(clip)
        for r, o in zip(ref, out, strict=True):
            assert o.encoded is not None
            assert r.is_intra == o.encoded.is_intra
            assert r.bits == o.encoded.bits
            np.testing.assert_array_equal(r.recon.y, o.encoded.recon.y)
            np.testing.assert_array_equal(r.recon.u, o.encoded.recon.u)

    def test_accelerators_refetch_rf_after_refresh(self, cfg, clip):
        fw = FevesFramework(
            get_platform("SysHK"), cfg,
            FrameworkConfig(compute="real", gop_size=4),
        )
        fw.encode(clip)
        # Reports are inter frames in order: GOP1 has 3 P frames, then the
        # intra refresh, then GOP2's P frames. The first P frame of GOP 2
        # (report index 3) must re-upload the RF to every accelerator —
        # including the R* GPU that normally keeps it resident.
        first_p_gop2 = fw.reports[3]
        rf_in = [
            t for t in first_p_gop2.transfer_plan.items
            if t.buffer == "rf" and t.direction == "h2d"
        ]
        assert {t.device for t in rf_in} == {"GPU_K"}
        # Whereas in steady state the R* GPU holds the newest RF locally.
        steady = fw.reports[2]
        assert not any(
            t.buffer == "rf" and t.direction == "h2d"
            for t in steady.transfer_plan.items
        )

    def test_active_refs_ramp_restarts(self, cfg, clip):
        fw = FevesFramework(
            get_platform("SysHK"), cfg,
            FrameworkConfig(compute="real", gop_size=4),
        )
        out = fw.encode(clip)
        # ME durations: first P of each GOP uses 1 ref; second uses 2.
        # Compare simulated times of report 3 (1 ref) vs report 4 (2 refs).
        t_first = fw.reports[3].tau_tot
        t_second = fw.reports[4].tau_tot
        assert t_second > t_first
