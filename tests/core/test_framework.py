"""Framework Control: adaptation dynamics in model mode."""

import pytest

from repro.codec.config import CodecConfig
from repro.core.config import FrameworkConfig
from repro.core.framework import FevesFramework
from repro.hw.noise import NoiseModel, PerturbationEvent, PerturbationSchedule
from repro.hw.presets import get_platform

CFG = CodecConfig(width=1920, height=1088, search_range=16, num_ref_frames=1)


def run(platform="SysHK", n=10, cfg=CFG, fw_cfg=None):
    fw = FevesFramework(get_platform(platform), cfg, fw_cfg or FrameworkConfig())
    outcomes = fw.run_model(n)
    return fw, outcomes


class TestAdaptation:
    def test_frame2_beats_equidistant_init(self):
        """Paper Fig. 7: 'significant reduction ... starting already with
        frame 2'."""
        for platform in ("SysNF", "SysNFF", "SysHK"):
            fw, out = run(platform, 4)
            assert out[1].time_s < out[0].time_s * 0.95

    def test_steady_state_is_stable(self):
        fw, out = run("SysHK", 20)
        times = [o.time_s for o in out[3:]]
        assert max(times) - min(times) < 0.02 * max(times)

    def test_single_device_platforms_trivially_stable(self):
        fw, out = run("GPU_K", 5)
        assert all(abs(o.time_s - out[1].time_s) < 1e-9 for o in out[1:])

    def test_perturbation_recovery_within_one_frame(self):
        """Paper §IV: 'a very fast recovery ... required a single
        inter-frame to converge'."""
        noise = NoiseModel(
            schedule=PerturbationSchedule(
                [PerturbationEvent(frame=10, device="CPU_H", factor=2.0)]
            )
        )
        fw, out = run("SysHK", 16, fw_cfg=FrameworkConfig(noise=noise))
        steady = out[8].time_s
        spike = out[9].time_s       # frame 10 (1-based) is perturbed
        recovered = out[11].time_s  # one frame after the event clears
        assert spike > steady * 1.2
        assert recovered == pytest.approx(steady, rel=0.05)

    def test_persistent_slowdown_rebalances(self):
        """A lasting CPU slowdown shifts rows to the GPU and settles at a
        new (higher) steady time instead of thrashing."""
        noise = NoiseModel(
            schedule=PerturbationSchedule(
                [PerturbationEvent(frame=8, device="CPU_H", factor=3.0,
                                   duration=100)]
            )
        )
        fw, out = run("SysHK", 20, fw_cfg=FrameworkConfig(noise=noise))
        before = out[5].time_s
        after = [o.time_s for o in out[12:]]
        # settles...
        assert max(after) - min(after) < 0.05 * max(after)
        # ...at a worse-but-bounded level (GPU picks up the slack).
        assert before < after[0] < before * 1.6
        # rows actually moved away from the CPU.
        cpu_idx = 1
        m_before = out[5].report.decision.m.rows[cpu_idx]
        m_after = out[15].report.decision.m.rows[cpu_idx]
        assert m_after < m_before


class TestRefRampUp:
    def test_fig7b_warmup_ramp(self):
        """With R references configured, frames 2..R see growing ME load."""
        cfg = CodecConfig(width=1920, height=1088, search_range=16,
                          num_ref_frames=5)
        fw, out = run("SysHK", 12, cfg=cfg)
        times = [o.time_s for o in out]
        # Ramp: each of frames 2..5 sees one more active reference than the
        # last, so encoding time climbs (list index = frame - 1).
        assert times[1] < times[2] < times[3] < times[4]
        # Then near-constant once all 5 references are in play.
        tail = times[5:]
        assert max(tail) - min(tail) < 0.03 * max(tail)


class TestRStarSelection:
    def test_auto_picks_fastest(self):
        fw, _ = run("SysHK", 3)
        assert fw.rstar_device == "GPU_K"

    def test_forced_cpu_centric(self):
        fw, out = run("SysHK", 6, fw_cfg=FrameworkConfig(centric="cpu"))
        assert fw.rstar_device == "CPU_H"
        assert out[-1].fps > 25  # still functional

    def test_forced_gpu_centric(self):
        fw, _ = run("SysHK", 3, fw_cfg=FrameworkConfig(centric="gpu"))
        assert fw.rstar_device == "GPU_K"


class TestReporting:
    def test_outcome_accessors(self):
        fw, out = run("SysHK", 3)
        assert out[0].fps == pytest.approx(1 / out[0].time_s)
        assert len(fw.frame_times_ms()) == 3
        assert fw.steady_state_fps() > 0

    def test_scheduling_overhead_under_2ms(self):
        """The paper's overhead claim, measured on our LB implementation."""
        fw, _ = run("SysNFF", 30)
        assert fw.scheduling_overhead_ms < 2.0

    def test_run_model_validates_input(self):
        fw = FevesFramework(get_platform("SysHK"), CFG)
        with pytest.raises(ValueError):
            fw.run_model(0)

    def test_encode_requires_real_mode(self):
        fw = FevesFramework(get_platform("SysHK"), CFG)
        with pytest.raises(RuntimeError, match="real"):
            fw.encode([])

    def test_summary(self):
        fw, _ = run("SysHK", 10)
        s = fw.summary()
        assert s["platform"] == "SysHK"
        assert s["frames"] == 10
        assert s["realtime"] is True
        assert s["rstar_device"] == "GPU_K"
        assert sum(s["distribution"]["me"]) == 68
        assert 0 < s["compute_utilization"]["GPU_K"] <= 1.0

    def test_summary_requires_frames(self):
        fw = FevesFramework(get_platform("SysHK"), CFG)
        with pytest.raises(RuntimeError, match="nothing encoded"):
            fw.summary()
