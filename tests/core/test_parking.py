"""Device parking: idle accelerators stop SF maintenance.

Extension over the paper (documented in DESIGN.md): when the steady-state
cost of keeping an accelerator's SF mirror warm exceeds its contribution,
the activity-subset LP parks it — no transfers, no backlog — and charges a
full SF refetch if it is ever reactivated.
"""

import pytest

from repro.baselines.oracle import ground_truth_perf
from repro.codec.config import CodecConfig
from repro.core.config import FrameworkConfig
from repro.core.data_access import DataAccessManager
from repro.core.framework import FevesFramework
from repro.core.load_balancing import LoadBalancer
from repro.hw.device import DeviceSpec
from repro.hw.interconnect import BufferSizes, LinkSpec
from repro.hw.presets import CPU_N, GPU_K, get_platform
from repro.hw.topology import Platform

CFG = CodecConfig(width=1920, height=1088, search_range=16, num_ref_frames=1)


def dead_link_platform() -> Platform:
    gpu = DeviceSpec(
        name="farGPU",
        kind="gpu",
        rates=GPU_K.rates,
        link=LinkSpec(h2d_gbps=0.05, d2h_gbps=0.05, latency_s=1e-3),
    )
    return Platform(name="deadlink", specs=[gpu, CPU_N])


class TestParkingDecision:
    def test_dead_link_gpu_parked(self):
        fw = FevesFramework(dead_link_platform(), CFG, FrameworkConfig(centric="cpu"))
        fw.run_model(8)
        d = fw.reports[-1].decision
        assert d.m.rows[0] == d.l.rows[0] == d.s.rows[0] == 0
        # System throughput equals CPU-only.
        solo = FevesFramework(get_platform("CPU_N"), CFG, FrameworkConfig())
        solo.run_model(8)
        assert fw.steady_state_fps(warmup=3) == pytest.approx(
            solo.steady_state_fps(), rel=0.02
        )

    def test_fast_gpu_not_parked(self):
        fw = FevesFramework(get_platform("SysHK"), CFG, FrameworkConfig())
        fw.run_model(8)
        d = fw.reports[-1].decision
        assert d.m.rows[0] + d.l.rows[0] + d.s.rows[0] > 0

    def test_parked_device_generates_no_transfers(self):
        fw = FevesFramework(dead_link_platform(), CFG, FrameworkConfig(centric="cpu"))
        fw.run_model(8)
        steady = fw.reports[-1]
        assert steady.transfer_plan.for_device("farGPU") == []


class TestDamParkingState:
    def _setup(self):
        platform = get_platform("SysNFF")
        dam = DataAccessManager(platform, BufferSizes(CFG.width, CFG.height))
        balancer = LoadBalancer(platform, CFG, FrameworkConfig())
        perf = ground_truth_perf(platform, CFG, active_refs=1)
        return platform, dam, balancer, perf

    def test_idle_device_enters_parked_set(self):
        from repro.core.bounds import ExtraTransfers
        from repro.core.distribution import Distribution
        from repro.core.load_balancing import LoadDecision

        platform, dam, _, _ = self._setup()
        n = CFG.mb_rows
        idle_gpu2 = Distribution(rows=(n, 0, 0), total=n)
        empty = ExtraTransfers(segments=(), rows=0)
        dec = LoadDecision(
            m=idle_gpu2, l=idle_gpu2, s=idle_gpu2,
            delta_m=[empty] * 3, delta_l=[empty] * 3,
        )
        dam.commit(dec, "GPU_F")
        assert "GPU_F2" in dam.parked
        assert dam.sigma_r_rows["GPU_F2"] == 0

    def test_reactivation_charges_full_sf(self):
        platform, dam, balancer, perf = self._setup()
        dam.parked.add("GPU_F2")
        decision = balancer.solve(
            perf, "GPU_F",
            {"GPU_F": False, "GPU_F2": True},
            {"GPU_F": 0, "GPU_F2": 0},
        )
        if decision.m.rows[1] + decision.l.rows[1] + decision.s.rows[1] > 0:
            plan = dam.plan(decision, "GPU_F")
            catchup = [
                t for t in plan.for_device("GPU_F2", phase=1)
                if t.buffer == "sf" and t.direction == "h2d"
            ]
            assert sum(t.rows for t in catchup) == CFG.mb_rows

    def test_intra_reset_clears_parked(self):
        platform, dam, _, _ = self._setup()
        dam.parked.add("GPU_F2")
        dam.reset_after_intra()
        assert dam.parked == set()
