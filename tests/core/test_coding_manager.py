"""Video Coding Manager: schedule structure and measurement harvesting."""

import pytest

from repro.baselines.oracle import ground_truth_perf
from repro.codec.config import CodecConfig
from repro.core.coding_manager import VideoCodingManager
from repro.core.config import FrameworkConfig
from repro.core.data_access import DataAccessManager
from repro.core.load_balancing import LoadBalancer
from repro.core.perf_model import PerformanceCharacterization
from repro.hw.des import validate_schedule
from repro.hw.interconnect import BufferSizes
from repro.hw.presets import get_platform

CFG = CodecConfig(width=1920, height=1088, search_range=16, num_ref_frames=1)


def run_one_frame(platform_name="SysHK", frame_index=1, fw_cfg=None):
    platform = get_platform(platform_name)
    fw_cfg = fw_cfg or FrameworkConfig()
    manager = VideoCodingManager(platform, CFG, fw_cfg)
    dam = DataAccessManager(platform, BufferSizes(CFG.width, CFG.height))
    balancer = LoadBalancer(platform, CFG, fw_cfg)
    gpus = [d.name for d in platform.gpus]
    rstar = gpus[0] if gpus else platform.devices[0].name
    if frame_index == 1:
        decision = balancer.equidistant()
    else:
        perf0 = ground_truth_perf(platform, CFG, active_refs=1)
        decision = balancer.solve(
            perf0, rstar, dam.needs_rf(), {g: 0 for g in gpus}
        )
    perf = PerformanceCharacterization()
    plan = dam.plan(decision, rstar)
    report = manager.run_frame(
        frame_index=frame_index,
        decision=decision,
        rstar_device=rstar,
        plan=plan,
        active_refs=1,
        perf=perf,
        probe_rstar=frame_index == 1,
    )
    return platform, report, perf, decision


class TestSchedule:
    def test_taus_ordered_and_positive(self):
        _, report, _, _ = run_one_frame()
        assert 0 < report.tau1 <= report.tau2 <= report.tau_tot

    def test_no_resource_overlap(self):
        _, report, _, _ = run_one_frame("SysNFF")
        validate_schedule(report.timeline.records)

    def test_deterministic(self):
        _, r1, _, _ = run_one_frame("SysNFF")
        _, r2, _, _ = run_one_frame("SysNFF")
        assert r1.tau_tot == pytest.approx(r2.tau_tot)
        assert len(r1.timeline.records) == len(r2.timeline.records)

    def test_compute_ops_present_per_device(self):
        _, report, _, decision = run_one_frame("SysHK")
        labels = {r.label for r in report.timeline.records}
        assert "ME[GPU_K]" in labels and "ME[CPU_H]" in labels
        assert "SME[GPU_K]" in labels and "INT[CPU_H]" in labels
        assert "R*[GPU_K]" in labels

    def test_transfers_on_copy_engines_only(self):
        _, report, _, _ = run_one_frame("SysNF")
        for rec in report.timeline.records:
            if rec.category in ("h2d", "d2h"):
                assert "copy" in rec.resource
            elif rec.category == "compute" and rec.resource != "host.sync":
                assert rec.resource.endswith(".compute")

    def test_dual_copy_engine_splits_directions(self):
        _, report, _, _ = run_one_frame("SysHK")  # GPU_K has 2 engines
        h2d_res = {
            r.resource for r in report.timeline.records if r.category == "h2d"
            and r.resource.startswith("GPU_K")
        }
        d2h_res = {
            r.resource for r in report.timeline.records if r.category == "d2h"
            and r.resource.startswith("GPU_K")
        }
        assert h2d_res == {"GPU_K.copyH2D"}
        assert d2h_res == {"GPU_K.copyD2H"}

    def test_single_copy_engine_shares_resource(self):
        _, report, _, _ = run_one_frame("SysNF")  # GPU_F single engine
        res = {
            r.resource
            for r in report.timeline.records
            if r.category in ("h2d", "d2h") and r.resource.startswith("GPU_F")
        }
        assert res == {"GPU_F.copy"}

    def test_dual_engines_allow_direction_overlap(self):
        """Kepler's two copy engines let an h2d run during a d2h — the
        concurrency the paper's initialization phase detects and exploits.
        Structural check at the device level: two independent opposite-
        direction transfers overlap on a dual-engine device and serialize
        on a single-engine one."""
        from repro.hw.des import Op, Simulator
        from repro.hw.device import Device
        from repro.hw.presets import GPU_F, GPU_K

        for spec, expect_overlap in ((GPU_K, True), (GPU_F, False)):
            dev = Device(spec=spec)
            a = Op("h2d", dev.copy_h2d, 1.0, category="h2d")
            b = Op("d2h", dev.copy_d2h, 1.0, category="d2h")
            Simulator(dev.resources()).run()
            overlap = a.start < b.end and b.start < a.end
            assert overlap == expect_overlap, spec.name

    def test_single_engine_never_overlaps_directions(self):
        _, report, _, _ = run_one_frame("SysNF", frame_index=2)
        copies = sorted(
            (
                r for r in report.timeline.records
                if r.resource == "GPU_F.copy" and r.duration > 0
            ),
            key=lambda r: r.start,
        )
        for a, b in zip(copies, copies[1:], strict=False):
            assert b.start >= a.end - 1e-12


class TestMeasurements:
    def test_compute_ks_observed(self):
        platform, report, perf, decision = run_one_frame("SysHK")
        for i, dev in enumerate(platform.devices):
            for module, dist in (("me", decision.m), ("int", decision.l),
                                 ("sme", decision.s)):
                if dist.rows[i] > 0:
                    assert perf.k_compute(dev.name, module) is not None

    def test_bandwidths_observed_for_accelerators(self):
        platform, report, perf, _ = run_one_frame("SysNFF")
        for gpu in platform.gpus:
            assert perf.bandwidth(gpu.name, "h2d") is not None
            assert perf.bandwidth(gpu.name, "d2h") is not None

    def test_rstar_probe_covers_all_devices(self):
        platform, report, perf, _ = run_one_frame("SysNFF", frame_index=1)
        for dev in platform.devices:
            assert perf.rstar_frame_s(dev.name) is not None

    def test_observed_k_matches_ground_truth(self):
        """With zero noise, measured K == the simulator's rate model."""
        platform, report, perf, decision = run_one_frame("SysHK")
        dev = platform.device("GPU_K")
        want = dev.spec.rates.me_row_s(CFG, 1)
        assert perf.k_compute("GPU_K", "me") == pytest.approx(want, rel=1e-9)

    def test_ready_for_lp_after_init_frame(self):
        platform, _, perf, _ = run_one_frame("SysNFF", frame_index=1)
        names = [d.name for d in platform.devices]
        accel = [d.name for d in platform.gpus]
        assert perf.ready_for_lp(names, accel)


class TestNoise:
    def test_perturbation_slows_device(self):
        from repro.hw.noise import NoiseModel, PerturbationEvent, PerturbationSchedule

        fw = FrameworkConfig(
            noise=NoiseModel(
                schedule=PerturbationSchedule(
                    [PerturbationEvent(frame=1, device="CPU_H", factor=3.0)]
                )
            )
        )
        _, slow, _, _ = run_one_frame("SysHK", fw_cfg=fw)
        _, base, _, _ = run_one_frame("SysHK")
        assert slow.tau_tot > base.tau_tot * 1.5  # equidistant init frame
