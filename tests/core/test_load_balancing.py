"""The Algorithm-2 LP: optimality, feasibility and caching."""

import pytest

from repro.baselines.oracle import ground_truth_perf
from repro.codec.config import CodecConfig
from repro.core.config import FrameworkConfig
from repro.core.load_balancing import LoadBalancer
from repro.hw.presets import get_platform

CFG = CodecConfig(width=1920, height=1088, search_range=16, num_ref_frames=1)


def make_solver(platform_name="SysHK", **fw_kwargs):
    platform = get_platform(platform_name)
    fw = FrameworkConfig(**fw_kwargs)
    balancer = LoadBalancer(platform, CFG, fw)
    perf = ground_truth_perf(platform, CFG, active_refs=1)
    gpus = [d.name for d in platform.gpus]
    rstar = gpus[0] if gpus else platform.devices[0].name
    needs_rf = {g: g != rstar for g in gpus}
    sigma_r = {g: 0 for g in gpus}
    return platform, balancer, perf, rstar, needs_rf, sigma_r


class TestEquidistant:
    def test_sums_and_balance(self):
        _, balancer, *_ = make_solver("SysNFF")
        d = balancer.equidistant()
        for dist in (d.m, d.l, d.s):
            assert sum(dist.rows) == 68
            assert max(dist.rows) - min(dist.rows) <= 1
        assert not d.used_lp


class TestLpSolve:
    def test_distributions_sum_to_n(self):
        platform, balancer, perf, rstar, needs_rf, sigma_r = make_solver()
        d = balancer.solve(perf, rstar, needs_rf, sigma_r)
        assert d.used_lp
        for dist in (d.m, d.l, d.s):
            assert sum(dist.rows) == 68
            assert all(r >= 0 for r in dist.rows)

    def test_faster_device_gets_more_me(self):
        platform, balancer, perf, rstar, needs_rf, sigma_r = make_solver("SysHK")
        d = balancer.solve(perf, rstar, needs_rf, sigma_r)
        # GPU_K is ~2.6x faster than CPU_H on ME: it must get more rows.
        assert d.m.rows[0] > d.m.rows[1]

    def test_lp_beats_equidistant_prediction(self):
        platform, balancer, perf, rstar, needs_rf, sigma_r = make_solver("SysHK")
        d = balancer.solve(perf, rstar, needs_rf, sigma_r)
        # LP-predicted total time must beat the analytic equidistant bound:
        # with an equal split, the CPU's half of the ME alone takes longer.
        cpu_me_k = perf.k_compute("CPU_H", "me")
        equi_cpu_me = cpu_me_k * 34
        assert d.tau_tot_pred < equi_cpu_me + 0.02

    def test_taus_ordered(self):
        _, balancer, perf, rstar, needs_rf, sigma_r = make_solver("SysNFF")
        d = balancer.solve(perf, rstar, needs_rf, sigma_r)
        assert 0 <= d.tau1_pred <= d.tau2_pred <= d.tau_tot_pred

    def test_unready_perf_falls_back_to_equidistant(self):
        from repro.core.perf_model import PerformanceCharacterization

        platform, balancer, _, rstar, needs_rf, sigma_r = make_solver()
        empty = PerformanceCharacterization()
        d = balancer.solve(empty, rstar, needs_rf, sigma_r)
        assert not d.used_lp

    def test_single_device_platform(self):
        platform, balancer, perf, rstar, needs_rf, sigma_r = make_solver("GPU_K")
        d = balancer.solve(perf, rstar, needs_rf, sigma_r)
        assert d.m.rows == (68,)

    def test_sigma_rows_only_for_non_rstar_accels(self):
        platform, balancer, perf, rstar, needs_rf, sigma_r = make_solver("SysNFF")
        d = balancer.solve(perf, rstar, needs_rf, sigma_r)
        assert rstar not in d.sigma
        assert "GPU_F2" in d.sigma
        assert "GPU_F2" in d.sigma_r

    def test_delta_terms_consistent_with_distributions(self):
        from repro.core.bounds import ms_bounds

        platform, balancer, perf, rstar, needs_rf, sigma_r = make_solver("SysNFF")
        d = balancer.solve(perf, rstar, needs_rf, sigma_r)
        for i, dev in enumerate(platform.devices):
            if dev.is_accelerator:
                assert d.delta_m[i].rows == ms_bounds(d.m, d.s, i).rows
            else:
                assert d.delta_m[i].rows == 0


class TestCaching:
    def test_same_ks_reuse_decision(self):
        platform, balancer, perf, rstar, needs_rf, sigma_r = make_solver(
            lb_cache_rtol=0.02
        )
        d1 = balancer.solve(perf, rstar, needs_rf, sigma_r)
        d2 = balancer.solve(perf, rstar, needs_rf, sigma_r)
        assert d2 is d1

    def test_changed_ks_resolve(self):
        platform, balancer, perf, rstar, needs_rf, sigma_r = make_solver(
            lb_cache_rtol=0.02
        )
        d1 = balancer.solve(perf, rstar, needs_rf, sigma_r)
        perf.observe_compute("CPU_H", "me", 1, perf.k_compute("CPU_H", "me") * 2)
        d2 = balancer.solve(perf, rstar, needs_rf, sigma_r)
        assert d2 is not d1
        # Slower CPU must lose ME rows.
        assert d2.m.rows[1] < d1.m.rows[1]

    def test_cache_disabled(self):
        platform, balancer, perf, rstar, needs_rf, sigma_r = make_solver(
            lb_cache_rtol=0.0
        )
        d1 = balancer.solve(perf, rstar, needs_rf, sigma_r)
        d2 = balancer.solve(perf, rstar, needs_rf, sigma_r)
        assert d2 is not d1

    def test_rstar_change_invalidates_cache(self):
        platform, balancer, perf, rstar, needs_rf, sigma_r = make_solver(
            "SysHK", lb_cache_rtol=0.02
        )
        d1 = balancer.solve(perf, rstar, needs_rf, sigma_r)
        d2 = balancer.solve(perf, "CPU_H", {"GPU_K": True}, sigma_r)
        assert d2 is not d1


class TestSigmaWindow:
    """σ sizing when the predicted τ2→τtot catch-up window collapses."""

    def _dists(self):
        from repro.core.distribution import Distribution

        rows = (30, 30, 8)
        return tuple(Distribution(rows=rows, total=68) for _ in range(3))

    def test_non_positive_window_defers_everything(self):
        # Regression: τtot ≤ τ2 used to size σ from a negative budget and
        # blow up in sf_remainder_segments. It must clamp to zero and
        # defer the whole catch-up to σʳ.
        _, balancer, perf, *_ = make_solver("SysNFF")
        m, l, s = self._dists()
        d = balancer._finalize(
            m, l, s, (0.010, 0.020, 0.015),
            used_lp=True, perf=perf, rstar_device="GPU_F",
        )
        assert d.sigma["GPU_F2"].rows == 0
        assert d.sigma_r["GPU_F2"].rows > 0

    def test_exactly_zero_window(self):
        _, balancer, perf, *_ = make_solver("SysNFF")
        m, l, s = self._dists()
        d = balancer._finalize(
            m, l, s, (0.010, 0.020, 0.020),
            used_lp=True, perf=perf, rstar_device="GPU_F",
        )
        assert d.sigma["GPU_F2"].rows == 0

    def test_positive_window_still_catches_up(self):
        _, balancer, perf, *_ = make_solver("SysNFF")
        m, l, s = self._dists()
        d = balancer._finalize(
            m, l, s, (0.010, 0.020, 0.080),
            used_lp=True, perf=perf, rstar_device="GPU_F",
        )
        assert d.sigma["GPU_F2"].rows > 0

    def test_window_split_is_exhaustive(self):
        # σ + σʳ must cover the same rows regardless of the window size.
        _, balancer, perf, *_ = make_solver("SysNFF")
        m, l, s = self._dists()
        closed = balancer._finalize(
            m, l, s, (0.010, 0.020, 0.015),
            used_lp=True, perf=perf, rstar_device="GPU_F",
        )
        open_ = balancer._finalize(
            m, l, s, (0.010, 0.020, 0.080),
            used_lp=True, perf=perf, rstar_device="GPU_F",
        )
        for dec in (closed, open_):
            total = dec.sigma["GPU_F2"].rows + dec.sigma_r["GPU_F2"].rows
            assert total == (
                closed.sigma["GPU_F2"].rows + closed.sigma_r["GPU_F2"].rows
            )


class TestLiveRestriction:
    def test_solve_with_dead_device_uses_lp_over_survivors(self):
        platform, balancer, perf, rstar, needs_rf, sigma_r = make_solver(
            "SysNFF"
        )
        live = frozenset({"GPU_F", "CPU_N"})
        d = balancer.solve(perf, rstar, needs_rf, sigma_r, live=live)
        assert d.used_lp
        idx = [dev.name for dev in platform.devices].index("GPU_F2")
        for dist in (d.m, d.l, d.s):
            assert dist.rows[idx] == 0
            assert sum(dist.rows) == 68

    def test_single_survivor_degenerates_without_lp(self):
        platform, balancer, perf, rstar, needs_rf, sigma_r = make_solver(
            "SysNFF"
        )
        d = balancer.solve(
            perf, "CPU_N", needs_rf, sigma_r, live=frozenset({"CPU_N"})
        )
        assert not d.used_lp
        idx = [dev.name for dev in platform.devices].index("CPU_N")
        assert d.m.rows[idx] == 68
        assert d.s.rows[idx] == 68

    def test_equidistant_respects_live(self):
        platform, balancer, *_ = make_solver("SysNFF")
        d = balancer.equidistant(live={"GPU_F", "CPU_N"})
        idx = [dev.name for dev in platform.devices].index("GPU_F2")
        assert d.m.rows[idx] == 0
        assert sum(d.m.rows) == 68

    def test_no_live_devices_raises(self):
        _, balancer, *_ = make_solver("SysNFF")
        with pytest.raises(ValueError, match="no live devices"):
            balancer.equidistant(live=set())


class TestCpuCentric:
    def test_cpu_rstar_feasible(self):
        platform, balancer, perf, _, _, sigma_r = make_solver("SysHK")
        needs_rf = {"GPU_K": True}  # CPU-centric: RF reconstructed on host
        d = balancer.solve(perf, "CPU_H", needs_rf, sigma_r)
        assert d.used_lp
        assert sum(d.m.rows) == 68
        # GPU still receives σ bookkeeping as a non-R* accelerator.
        assert "GPU_K" in d.sigma
