"""Performance Characterization: observations, EWMA, derived transfer Ks."""

import pytest

from repro.core.perf_model import PerformanceCharacterization, buffer_row_bytes
from repro.hw.interconnect import BufferSizes

SIZES = BufferSizes(width=1920, height=1088)


class TestComputeObservation:
    def test_k_is_time_per_row(self):
        p = PerformanceCharacterization()
        p.observe_compute("dev", "me", rows=10, seconds=0.05)
        assert p.k_compute("dev", "me") == pytest.approx(0.005)

    def test_unmeasured_is_none(self):
        p = PerformanceCharacterization()
        assert p.k_compute("dev", "me") is None
        assert p.rstar_frame_s("dev") is None

    def test_alpha_one_takes_latest(self):
        p = PerformanceCharacterization(alpha=1.0)
        p.observe_compute("d", "sme", 10, 1.0)
        p.observe_compute("d", "sme", 10, 2.0)
        assert p.k_compute("d", "sme") == pytest.approx(0.2)

    def test_ewma_blends(self):
        p = PerformanceCharacterization(alpha=0.5)
        p.observe_compute("d", "int", 10, 1.0)   # k = 0.1
        p.observe_compute("d", "int", 10, 2.0)   # new = 0.2
        assert p.k_compute("d", "int") == pytest.approx(0.15)

    def test_zero_rows_ignored(self):
        p = PerformanceCharacterization()
        p.observe_compute("d", "me", 0, 1.0)
        assert p.k_compute("d", "me") is None

    def test_unknown_module_rejected(self):
        with pytest.raises(ValueError):
            PerformanceCharacterization().observe_compute("d", "dct", 1, 1.0)

    def test_rstar_observation(self):
        p = PerformanceCharacterization()
        p.observe_rstar("d", 0.004)
        assert p.rstar_frame_s("d") == pytest.approx(0.004)


class TestTransferObservation:
    def test_bandwidth_estimate(self):
        p = PerformanceCharacterization()
        p.observe_transfer("g", "h2d", nbytes=1e9, seconds=0.2)
        assert p.bandwidth("g", "h2d") == pytest.approx(5e9)
        assert p.bandwidth("g", "d2h") is None

    def test_k_transfer_derived_from_bandwidth(self):
        p = PerformanceCharacterization()
        p.observe_transfer("g", "h2d", nbytes=1e9, seconds=0.1)  # 10 GB/s
        k = p.k_transfer("g", "sf", "h2d", SIZES)
        assert k == pytest.approx(SIZES.sf_row / 1e10)

    def test_one_observation_covers_all_buffers(self):
        p = PerformanceCharacterization()
        p.observe_transfer("g", "d2h", nbytes=1e6, seconds=1e-4)
        for buf in ("cf", "cf_full", "rf", "sf", "mv"):
            assert p.k_transfer("g", buf, "d2h", SIZES) is not None

    def test_direction_validated(self):
        with pytest.raises(ValueError):
            PerformanceCharacterization().observe_transfer("g", "up", 1.0, 1.0)

    def test_buffer_row_bytes_unknown(self):
        with pytest.raises(ValueError):
            buffer_row_bytes("dct", SIZES)


class TestReadiness:
    def test_ready_requires_all_modules_and_links(self):
        p = PerformanceCharacterization()
        assert not p.ready_for_lp(["c", "g"], ["g"])
        for dev in ("c", "g"):
            for mod in ("me", "int", "sme"):
                p.observe_compute(dev, mod, 1, 0.01)
        assert not p.ready_for_lp(["c", "g"], ["g"])  # link missing
        p.observe_transfer("g", "h2d", 1e6, 1e-3)
        p.observe_transfer("g", "d2h", 1e6, 1e-3)
        assert p.ready_for_lp(["c", "g"], ["g"])

    def test_snapshot_contains_estimates(self):
        p = PerformanceCharacterization()
        p.observe_compute("d", "me", 2, 0.01)
        p.observe_rstar("d", 0.002)
        p.observe_transfer("d", "h2d", 1e6, 1e-3)
        snap = p.snapshot()
        assert snap["d"]["k_me"] == pytest.approx(0.005)
        assert snap["d"]["rstar_frame_s"] == pytest.approx(0.002)
        assert "bw_h2d" in snap["d"]

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            PerformanceCharacterization(alpha=0.0)


class TestPriorSeeding:
    """First real observation must replace a prior outright, not blend."""

    def test_first_observation_absorbs_in_one_frame(self):
        p = PerformanceCharacterization(alpha=0.2)
        p.observe_compute("dev", "me", rows=1, seconds=1.0, prior=True)
        assert p.is_prior("dev", "me")
        # With alpha=0.2 a blend would land at 0.2*0.01 + 0.8*1.0 = 0.802;
        # seeding outright lands exactly on the measurement.
        p.observe_compute("dev", "me", rows=10, seconds=0.1)
        assert p.k_compute("dev", "me") == pytest.approx(0.01)
        assert not p.is_prior("dev", "me")

    def test_subsequent_observations_blend(self):
        p = PerformanceCharacterization(alpha=0.5)
        p.observe_compute("dev", "me", rows=1, seconds=0.01)
        p.observe_compute("dev", "me", rows=1, seconds=0.03)
        assert p.k_compute("dev", "me") == pytest.approx(0.02)

    def test_prior_never_overwrites_measurement(self):
        p = PerformanceCharacterization()
        p.observe_compute("dev", "me", rows=1, seconds=0.01)
        p.observe_compute("dev", "me", rows=1, seconds=9.9, prior=True)
        assert p.k_compute("dev", "me") == pytest.approx(0.01)
        assert not p.is_prior("dev", "me")

    def test_rstar_and_transfer_priors(self):
        p = PerformanceCharacterization(alpha=0.25)
        p.observe_rstar("dev", 1.0, prior=True)
        p.observe_transfer("dev", "h2d", 1e6, 1.0, prior=True)
        p.observe_rstar("dev", 0.004)
        p.observe_transfer("dev", "h2d", 1e6, 1e-3)
        assert p.rstar_frame_s("dev") == pytest.approx(0.004)
        assert p.bandwidth("dev", "h2d") == pytest.approx(1e9)


class TestInvalidate:
    def _measured(self) -> PerformanceCharacterization:
        p = PerformanceCharacterization()
        for mod in ("me", "int", "sme"):
            p.observe_compute("dev", mod, 1, 0.01)
        p.observe_transfer("dev", "h2d", 1e6, 1e-3)
        p.observe_transfer("dev", "d2h", 1e6, 1e-3)
        return p

    def test_keep_prior_demotes(self):
        p = self._measured()
        p.invalidate("dev", keep_prior=True)
        # estimates survive as priors...
        assert p.k_compute("dev", "me") == pytest.approx(0.01)
        assert p.is_prior("dev", "me")
        # ...and the next measurement replaces them in one frame
        p.observe_compute("dev", "me", 1, 0.04)
        assert p.k_compute("dev", "me") == pytest.approx(0.04)

    def test_forget_everything(self):
        p = self._measured()
        p.invalidate("dev", keep_prior=False)
        assert p.k_compute("dev", "me") is None
        assert not p.ready_for_lp(["dev"], ["dev"])

    def test_invalidate_unknown_device_is_noop(self):
        p = PerformanceCharacterization()
        p.invalidate("ghost", keep_prior=True)
        p.invalidate("ghost", keep_prior=False)
        assert p.k_compute("ghost", "me") is None
