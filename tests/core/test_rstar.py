"""R* Dijkstra mapping."""

import pytest

from repro.codec.config import CodecConfig
from repro.core.rstar import RSTAR_STAGES, select_rstar_device
from repro.hw.presets import get_platform

CFG = CodecConfig(width=1920, height=1088, search_range=16)


class TestSelection:
    def test_fastest_device_wins(self):
        p = get_platform("SysHK")
        est = {"GPU_K": 0.002, "CPU_H": 0.005}
        d = select_rstar_device(p, est, CFG)
        assert d.device == "GPU_K"

    def test_cpu_selected_when_faster(self):
        p = get_platform("SysHK")
        est = {"GPU_K": 0.010, "CPU_H": 0.001}
        assert select_rstar_device(p, est, CFG).device == "CPU_H"

    def test_path_stays_on_one_device(self):
        """Migration costs dwarf R* compute: no stage switching."""
        p = get_platform("SysNFF")
        est = {"GPU_F": 0.004, "GPU_F2": 0.0039, "CPU_N": 0.008}
        d = select_rstar_device(p, est, CFG)
        devices_on_path = {dev for _, dev in d.path}
        assert len(devices_on_path) == 1

    def test_total_time_is_path_length(self):
        p = get_platform("SysHK")
        est = {"GPU_K": 0.002, "CPU_H": 0.005}
        d = select_rstar_device(p, est, CFG)
        assert d.total_s == pytest.approx(0.002, rel=0.01)

    def test_missing_estimates_excluded(self):
        p = get_platform("SysHK")
        d = select_rstar_device(p, {"CPU_H": 0.01}, CFG)
        assert d.device == "CPU_H"

    def test_no_estimates_raises(self):
        p = get_platform("SysHK")
        with pytest.raises(ValueError):
            select_rstar_device(p, {}, CFG)

    def test_stage_shares_sum_to_one(self):
        assert sum(share for _, share in RSTAR_STAGES) == pytest.approx(1.0)

    def test_path_covers_all_stages(self):
        p = get_platform("SysNF")
        d = select_rstar_device(p, {"GPU_F": 0.004, "CPU_N": 0.008}, CFG)
        assert [stage for stage, _ in d.path] == [s for s, _ in RSTAR_STAGES]


class TestShrinkingDeviceSet:
    """Re-selection as devices fault out: the graph only ever shrinks."""

    EST = {"GPU_F": 0.004, "GPU_F2": 0.0039, "CPU_N": 0.008}

    def test_reselect_after_winner_drops(self):
        p = get_platform("SysNFF")
        winner = select_rstar_device(p, self.EST, CFG).device
        survivors = {d: t for d, t in self.EST.items() if d != winner}
        d2 = select_rstar_device(p, survivors, CFG)
        assert d2.device != winner
        assert d2.device in survivors

    def test_two_then_one_device(self):
        p = get_platform("SysNFF")
        d = select_rstar_device(p, {"GPU_F": 0.004, "CPU_N": 0.008}, CFG)
        assert d.device == "GPU_F"
        d = select_rstar_device(p, {"CPU_N": 0.008}, CFG)
        assert d.device == "CPU_N"
        assert {dev for _, dev in d.path} == {"CPU_N"}

    def test_last_survivor_even_if_slow(self):
        # The sole remaining estimate wins no matter how bad it is.
        p = get_platform("SysNFF")
        d = select_rstar_device(p, {"GPU_F2": 99.0}, CFG)
        assert d.device == "GPU_F2"

    def test_shrinking_never_improves_total(self):
        p = get_platform("SysNFF")
        full = select_rstar_device(p, self.EST, CFG).total_s
        names = sorted(self.EST)
        for drop in names:
            survivors = {d: t for d, t in self.EST.items() if d != drop}
            reduced = select_rstar_device(p, survivors, CFG).total_s
            assert reduced >= full - 1e-12
