"""Integration: FEVES collaborative output ≡ reference encoder, bit-exact.

This is the repository's strongest correctness statement: splitting ME, INT
and SME across any platform's devices — under any load-balancing decision,
GPU- or CPU-centric R* mapping, single or dual copy engines — must produce
exactly the reconstruction and bit count of the sequential reference
encoder. Any error in band splitting, stitching, Δ bookkeeping or
synchronization shows up here.
"""

import numpy as np
import pytest

from repro.codec.config import CodecConfig
from repro.codec.encoder import ReferenceEncoder
from repro.core.config import FrameworkConfig
from repro.core.framework import FevesFramework
from repro.hw.presets import get_platform
from repro.video.generator import SyntheticSequence


def encode_both(platform_name, cfg, frames, fw_kwargs=None):
    ref_out = ReferenceEncoder(cfg).encode_sequence(frames)
    fw = FevesFramework(
        get_platform(platform_name),
        cfg,
        FrameworkConfig(compute="real", **(fw_kwargs or {})),
    )
    fev_out = fw.encode(frames)
    return ref_out, fev_out, fw


def assert_identical(ref_out, fev_out):
    assert len(ref_out) == len(fev_out)
    for r, o in zip(ref_out, fev_out, strict=True):
        e = o.encoded
        assert e is not None
        assert r.bits == e.bits, f"frame {r.index}: bits differ"
        np.testing.assert_array_equal(r.recon.y, e.recon.y)
        np.testing.assert_array_equal(r.recon.u, e.recon.u)
        np.testing.assert_array_equal(r.recon.v, e.recon.v)


@pytest.fixture(scope="module")
def frames():
    seq = SyntheticSequence(width=128, height=96, seed=13, noise_sigma=1.5)
    return seq.frames(5)


@pytest.fixture(scope="module")
def cfg():
    return CodecConfig(width=128, height=96, search_range=8, num_ref_frames=2)


class TestBitExactness:
    @pytest.mark.parametrize("platform", ["SysNF", "SysNFF", "SysHK"])
    def test_platforms_match_reference(self, platform, cfg, frames):
        ref_out, fev_out, _ = encode_both(platform, cfg, frames)
        assert_identical(ref_out, fev_out)

    def test_cpu_centric_matches(self, cfg, frames):
        ref_out, fev_out, fw = encode_both(
            "SysHK", cfg, frames, {"centric": "cpu"}
        )
        assert fw.rstar_device == "CPU_H"
        assert_identical(ref_out, fev_out)

    def test_single_ref_config(self, frames):
        cfg1 = CodecConfig(width=128, height=96, search_range=8, num_ref_frames=1)
        ref_out, fev_out, _ = encode_both("SysNFF", cfg1, frames)
        assert_identical(ref_out, fev_out)

    def test_many_refs_with_warmup(self):
        cfg4 = CodecConfig(width=128, height=96, search_range=4, num_ref_frames=4)
        seq = SyntheticSequence(width=128, height=96, seed=21, noise_sigma=1.0)
        frames = seq.frames(7)
        ref_out, fev_out, _ = encode_both("SysHK", cfg4, frames)
        assert_identical(ref_out, fev_out)

    def test_partition_subset(self, frames):
        cfg_sub = CodecConfig(
            width=128, height=96, search_range=8,
            enabled_partitions=((16, 16), (8, 8)),
        )
        ref_out, fev_out, _ = encode_both("SysNF", cfg_sub, frames)
        assert_identical(ref_out, fev_out)

    def test_subpel_disabled(self, frames):
        cfg_fp = CodecConfig(width=128, height=96, search_range=8, subpel=False)
        ref_out, fev_out, _ = encode_both("SysHK", cfg_fp, frames)
        assert_identical(ref_out, fev_out)

    def test_noise_does_not_change_output(self, cfg, frames):
        """Load noise moves work between devices but never changes bits."""
        from repro.hw.noise import GaussianJitter, NoiseModel

        ref_out, fev_out, _ = encode_both(
            "SysNFF", cfg, frames,
            {"noise": NoiseModel(jitter=GaussianJitter(sigma=0.2, seed=3))},
        )
        assert_identical(ref_out, fev_out)


class TestRealModeReports:
    def test_timing_reports_accompany_frames(self, cfg, frames):
        _, fev_out, fw = encode_both("SysHK", cfg, frames)
        for o in fev_out[1:]:
            assert o.report.tau_tot > 0
        assert len(fw.reports) == len(frames) - 1

    def test_distributions_actually_split_work(self, cfg, frames):
        # At this toy frame size the LP may concentrate a single module on
        # one device (per-transfer latency dominates), but across the three
        # distributed modules several devices must be computing.
        _, _, fw = encode_both("SysNFF", cfg, frames)
        final = fw.reports[-1].decision
        busy = {
            i
            for dist in (final.m, final.l, final.s)
            for i, r in enumerate(dist.rows)
            if r > 0
        }
        assert len(busy) >= 2
