"""Device-fault injection: eviction, rebalancing, re-admission, logging."""

import numpy as np
import pytest

from repro.codec.config import CodecConfig
from repro.core.config import FrameworkConfig
from repro.core.framework import FevesFramework
from repro.hw.noise import FaultEvent, FaultSchedule
from repro.hw.presets import get_platform
from repro.video.generator import SyntheticSequence

CFG = CodecConfig(width=1920, height=1088, search_range=16, num_ref_frames=1)


def run_with_faults(platform: str, events, frames: int, **fw_kwargs):
    fw = FevesFramework(
        get_platform(platform),
        CFG,
        FrameworkConfig(faults=FaultSchedule(events), **fw_kwargs),
    )
    outcomes = fw.run_model(frames)
    return fw, outcomes


class TestDropout:
    def test_acceptance_dropout_matches_reduced_platform(self):
        """ISSUE acceptance: mid-encode permanent dropout of one GPU.

        The encoder completes all frames with no exception, the LP is
        re-solved over the survivors within one frame of the fault, and
        the steady-state frame time lands within 10% of a from-scratch
        run on the reduced platform.
        """
        fw, outcomes = run_with_faults(
            "SysNFF",
            [FaultEvent(frame=5, device="GPU_F2", kind="dropout")],
            15,
        )
        assert len(outcomes) == 15  # completed every frame

        # The fault frame still charges the dying device with its planned
        # rows; the very next frame's decision excludes it and is LP-based.
        fault_report = fw.reports[4]
        assert fault_report.faulted == ("GPU_F2",)
        next_dec = fw.reports[5].decision
        idx = [d.name for d in fw.platform.devices].index("GPU_F2")
        assert next_dec.used_lp
        assert next_dec.m.rows[idx] == 0
        assert next_dec.l.rows[idx] == 0
        assert next_dec.s.rows[idx] == 0

        oracle = FevesFramework(get_platform("SysNF"), CFG, FrameworkConfig())
        oracle.run_model(15)
        post = fw.reports[-1].tau_tot
        ref = oracle.reports[-1].tau_tot
        assert post == pytest.approx(ref, rel=0.10)

    def test_fault_frame_absorbs_stall_and_redo(self):
        fw, _ = run_with_faults(
            "SysNFF",
            [FaultEvent(frame=4, device="GPU_F2", kind="dropout")],
            6,
        )
        rep = fw.reports[3]
        assert rep.fault_time_lost_s > 0
        # the stall op shows up on the dead device's engine as "fault"
        labels = [r.label for r in rep.timeline.records if r.category == "fault"]
        assert labels == ["FAULT[GPU_F2]"]
        # the fault frame is slower than its neighbours
        assert rep.tau_tot > fw.reports[2].tau_tot

    def test_dropped_device_never_returns(self):
        fw, _ = run_with_faults(
            "SysNFF",
            [FaultEvent(frame=3, device="GPU_F2", kind="dropout")],
            12,
        )
        idx = [d.name for d in fw.platform.devices].index("GPU_F2")
        for rep in fw.reports[3:]:
            assert rep.decision.m.rows[idx] == 0
            assert rep.decision.s.rows[idx] == 0
        assert fw.summary()["live_devices"] == ["CPU_N", "GPU_F"]

    def test_cpu_dropout_leaves_gpus_running(self):
        fw, outcomes = run_with_faults(
            "SysNFF",
            [FaultEvent(frame=4, device="CPU_N", kind="dropout")],
            10,
        )
        assert len(outcomes) == 10
        idx = [d.name for d in fw.platform.devices].index("CPU_N")
        assert fw.reports[-1].decision.m.rows[idx] == 0

    def test_all_devices_down_raises(self):
        with pytest.raises(RuntimeError, match="all devices faulted"):
            run_with_faults(
                "SysNF",
                [
                    FaultEvent(frame=3, device="GPU_F", kind="dropout"),
                    FaultEvent(frame=3, device="CPU_N", kind="dropout"),
                ],
                6,
            )

    def test_unknown_fault_device_rejected_at_construction(self):
        with pytest.raises(KeyError):
            FevesFramework(
                get_platform("SysNF"),
                CFG,
                FrameworkConfig(
                    faults=FaultSchedule(
                        [FaultEvent(frame=2, device="nope", kind="dropout")]
                    )
                ),
            )


class TestRstarDeviceDropout:
    def test_rstar_moves_to_survivor_on_fault_frame(self):
        fw, _ = run_with_faults(
            "SysNFF",
            [FaultEvent(frame=5, device="GPU_F", kind="dropout")],
            10,
        )
        # GPU_F hosts R* in steady state on SysNFF; after its death every
        # frame (including the fault frame itself) runs R* elsewhere.
        assert fw.reports[3].rstar_device == "GPU_F"
        for rep in fw.reports[4:]:
            assert rep.rstar_device != "GPU_F"

    def test_forced_centric_overridden_by_survival(self):
        fw, outcomes = run_with_faults(
            "SysNF",
            [FaultEvent(frame=4, device="GPU_F", kind="dropout")],
            8,
            centric="gpu",
        )
        assert len(outcomes) == 8
        assert fw.reports[-1].rstar_device == "CPU_N"


class TestHangRecovery:
    def test_hang_evicts_then_readmits(self):
        fw, _ = run_with_faults(
            "SysNFF",
            [FaultEvent(frame=4, device="GPU_F2", kind="hang", duration=3)],
            12,
        )
        idx = [d.name for d in fw.platform.devices].index("GPU_F2")
        # down during frames 5..6 (evicted after the frame-4 stall)
        for f in (5, 6):
            assert fw.reports[f - 1].decision.m.rows[idx] == 0
        readmit = [e for e in fw.fault_log if e.readmitted]
        assert len(readmit) == 1 and readmit[0].frame_index == 7
        # priors give a one-frame re-warm: the LP uses it again immediately
        rep7 = fw.reports[6]
        assert rep7.decision.used_lp
        assert rep7.decision.m.rows[idx] + rep7.decision.l.rows[idx] > 0
        # steady state returns to the pre-fault optimum
        assert fw.reports[-1].tau_tot == pytest.approx(
            fw.reports[2].tau_tot, rel=0.05
        )

    def test_cleared_characterization_warms_up(self):
        fw, _ = run_with_faults(
            "SysNFF",
            [
                FaultEvent(
                    frame=4,
                    device="GPU_F2",
                    kind="hang",
                    duration=2,
                    clear_characterization=True,
                )
            ],
            12,
        )
        idx = [d.name for d in fw.platform.devices].index("GPU_F2")
        # re-admitted at frame 6 with no characterization: the decision
        # grants exactly the configured warm-up rows per module
        rep6 = fw.reports[5]
        assert rep6.decision.m.rows[idx] == fw.fw_cfg.warmup_rows
        assert rep6.decision.s.rows[idx] == fw.fw_cfg.warmup_rows
        # measured again, the device earns a real share afterwards
        assert fw.reports[-1].decision.m.rows[idx] > fw.fw_cfg.warmup_rows
        assert fw.reports[-1].tau_tot == pytest.approx(
            fw.reports[2].tau_tot, rel=0.05
        )


class TestReadmissionSteadyState:
    """A recovered device must rejoin and converge to the clean optimum."""

    def test_recovery_mid_gop_restores_clean_distribution(self):
        """Warm-up grant on re-admission, then clean steady state.

        A device hangs mid-GOP with its characterization cleared — the
        worst-case recovery (no priors). On the re-admission frame the
        decision grants exactly the configured warm-up rows; once
        re-measured, the steady-state work distribution matches a
        never-faulted run row for row.
        """
        frames = 16
        fw, outcomes = run_with_faults(
            "SysNFF",
            [
                FaultEvent(
                    frame=5,
                    device="GPU_F2",
                    kind="hang",
                    duration=2,
                    clear_characterization=True,
                )
            ],
            frames,
        )
        assert len(outcomes) == frames

        # re-admission is logged mid-GOP, and that frame's decision is the
        # warm-up grant for the un-characterized device
        readmit = [e for e in fw.fault_log if e.readmitted]
        assert len(readmit) == 1
        r = readmit[0].frame_index
        assert 1 < r < frames
        idx = [d.name for d in fw.platform.devices].index("GPU_F2")
        grant = fw.reports[r - 1].decision
        assert grant.m.rows[idx] == fw.fw_cfg.warmup_rows
        assert grant.s.rows[idx] == fw.fw_cfg.warmup_rows

        clean = FevesFramework(get_platform("SysNFF"), CFG, FrameworkConfig())
        clean.run_model(frames)
        recovered = fw.reports[-1].decision
        reference = clean.reports[-1].decision
        for module in ("m", "l", "s"):
            got = getattr(recovered, module).rows
            want = getattr(reference, module).rows
            assert got == want, f"{module} rows diverged: {got} != {want}"
        assert fw.reports[-1].tau_tot == pytest.approx(
            clean.reports[-1].tau_tot, rel=0.02
        )


class TestDegradation:
    def test_degrade_shifts_rows_off_device(self):
        fw, _ = run_with_faults(
            "SysNFF",
            [FaultEvent(frame=4, device="GPU_F2", kind="degrade", factor=3.0)],
            10,
        )
        idx = [d.name for d in fw.platform.devices].index("GPU_F2")
        before = fw.reports[2].decision.m.rows[idx]
        after = fw.reports[-1].decision.m.rows[idx]
        assert after < before
        # the device is degraded, not evicted
        assert fw.summary()["live_devices"] == ["CPU_N", "GPU_F", "GPU_F2"]
        assert not any(e.evicted for e in fw.fault_log)

    def test_copy_fail_slows_transfers_and_rebalances(self):
        fw, _ = run_with_faults(
            "SysNFF",
            [FaultEvent(frame=4, device="GPU_F2", kind="copy_fail", factor=8.0)],
            10,
        )
        idx = [d.name for d in fw.platform.devices].index("GPU_F2")
        before = (
            fw.reports[2].decision.m.rows[idx] + fw.reports[2].decision.l.rows[idx]
        )
        after = (
            fw.reports[-1].decision.m.rows[idx]
            + fw.reports[-1].decision.l.rows[idx]
        )
        assert after < before


class TestFaultLog:
    def test_every_frame_logged(self):
        fw, _ = run_with_faults(
            "SysNFF",
            [FaultEvent(frame=4, device="GPU_F2", kind="hang", duration=2)],
            8,
        )
        assert [e.frame_index for e in fw.fault_log] == list(range(1, 9))

    def test_log_records_eviction_and_readmission(self):
        fw, _ = run_with_faults(
            "SysNFF",
            [FaultEvent(frame=4, device="GPU_F2", kind="hang", duration=2)],
            8,
        )
        ev4 = fw.fault_log[3]
        assert ev4.evicted == ("GPU_F2",)
        assert "hang at frame 4" in (ev4.reason_for("GPU_F2") or "")
        assert ev4.time_lost_s > 0
        ev6 = fw.fault_log[5]
        assert ev6.readmitted == ("GPU_F2",)
        quiet = fw.fault_log[1]
        assert not quiet.eventful

    def test_log_live_set_shrinks(self):
        fw, _ = run_with_faults(
            "SysNFF",
            [FaultEvent(frame=3, device="GPU_F2", kind="dropout")],
            6,
        )
        assert fw.fault_log[2].live == ("CPU_N", "GPU_F", "GPU_F2")
        assert fw.fault_log[3].live == ("CPU_N", "GPU_F")


class TestRealModeBitExact:
    def test_dropout_does_not_change_the_bitstream(self):
        """Redo-on-survivor keeps the collaborative output bit-exact."""
        cfg = CodecConfig(width=128, height=96, search_range=8, num_ref_frames=2)
        frames = SyntheticSequence(
            width=128, height=96, seed=11, noise_sigma=1.5
        ).frames(7)

        def encode(faults):
            fw = FevesFramework(
                get_platform("SysNFF"),
                cfg,
                FrameworkConfig(compute="real", faults=faults),
            )
            return fw.encode(frames)

        clean = encode(FaultSchedule())
        faulty = encode(
            FaultSchedule([FaultEvent(frame=3, device="GPU_F2", kind="dropout")])
        )
        for a, b in zip(clean, faulty, strict=True):
            assert (a.encoded is None) == (b.encoded is None)
            if a.encoded is None:
                continue
            assert a.encoded.bits == b.encoded.bits
            assert np.array_equal(a.encoded.recon.y, b.encoded.recon.y)
            assert np.array_equal(a.encoded.recon.u, b.encoded.recon.u)
            assert np.array_equal(a.encoded.recon.v, b.encoded.recon.v)
