"""Analysis utilities: utilization, efficiency bounds, convergence."""

import pytest

from repro.codec.config import CodecConfig
from repro.core.analysis import (
    communication_volume,
    convergence_frame,
    ideal_aggregate_fps,
    parallel_efficiency,
    utilization_summary,
)
from repro.core.config import FrameworkConfig
from repro.core.framework import FevesFramework
from repro.hw.presets import get_platform

CFG = CodecConfig(width=1920, height=1088, search_range=16, num_ref_frames=1)


@pytest.fixture(scope="module")
def syshk_run():
    fw = FevesFramework(get_platform("SysHK"), CFG, FrameworkConfig())
    fw.run_model(15)
    return fw


class TestUtilization:
    def test_gpu_compute_highly_utilized(self, syshk_run):
        summary = utilization_summary(syshk_run.reports)
        assert summary.compute_utilization("GPU_K") > 0.8

    def test_all_fractions_valid(self, syshk_run):
        summary = utilization_summary(syshk_run.reports)
        for res, u in summary.per_resource.items():
            assert 0.0 <= u <= 1.0, res

    def test_busiest_is_a_compute_engine(self, syshk_run):
        name, u = utilization_summary(syshk_run.reports).busiest()
        assert name.endswith(".compute")
        assert u > 0.5

    def test_empty_reports_rejected(self):
        with pytest.raises(ValueError):
            utilization_summary([])


class TestIdealBound:
    def test_bound_exceeds_measured(self, syshk_run):
        bound = ideal_aggregate_fps(syshk_run.platform, CFG)
        assert bound > syshk_run.steady_state_fps()

    def test_bound_exceeds_best_single_device(self):
        platform = get_platform("SysHK")
        bound = ideal_aggregate_fps(platform, CFG)
        from repro.hw.calibration import predict_single_device_fps

        best_single = max(
            predict_single_device_fps(d.spec, CFG)
            if not d.is_accelerator
            else predict_single_device_fps(d.spec, CFG)
            for d in platform.devices
        )
        assert bound > best_single

    def test_efficiency_in_range(self, syshk_run):
        eff = parallel_efficiency(
            syshk_run.steady_state_fps(), syshk_run.platform, CFG
        )
        assert 0.80 < eff <= 1.0  # FEVES gets close to the ideal aggregate

    def test_refs_scale_bound(self):
        platform = get_platform("SysHK")
        one = ideal_aggregate_fps(platform, CFG, active_refs=1)
        four = ideal_aggregate_fps(platform, CFG, active_refs=4)
        assert four < one


class TestConvergence:
    def test_feves_converges_by_frame_two(self, syshk_run):
        frame = convergence_frame([t for t in syshk_run.trace.frame_times_s])
        assert 1 <= frame <= 3

    def test_never_settling_trace(self):
        assert convergence_frame([1.0, 2.0, 1.0, 2.0, 1.0]) == 5  # only last
        assert convergence_frame([5.0]) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            convergence_frame([])


class TestCommunication:
    def test_steady_state_volume_positive_and_bounded(self, syshk_run):
        vol = communication_volume(syshk_run.reports)
        assert vol["h2d"] > 0
        # Far less than re-shipping every buffer wholesale each frame.
        from repro.hw.interconnect import BufferSizes

        sizes = BufferSizes(CFG.width, CFG.height)
        everything = CFG.mb_rows * (
            sizes.cf_row + sizes.cf_row_full + sizes.sf_row * 2 + sizes.rf_row
        )
        assert vol["h2d"] < everything
