"""SAN-G on the real execution backend: lifecycle journals from live runs.

The protocol monitor's exec-side guarantees: a use-after-close on the
shared frame store is caught from the journal of the *real* failing
call, a store that never reaches ``close()`` is flagged at teardown
(``require_terminal``), and a clean two-worker process-backend encode
journals a full pool/store lifecycle that replays clean.
"""

from __future__ import annotations

import pytest

from repro.codec.config import CodecConfig
from repro.core.config import FrameworkConfig
from repro.core.framework import FevesFramework
from repro.exec.shm import SharedFrameStore
from repro.hw.presets import get_platform
from repro.sanitizers import TimelineSanitizer
from repro.sanitizers.protocols.journal import JOURNAL
from repro.sanitizers.protocols.monitor import check_events
from repro.video.generator import SyntheticSequence

pytestmark = pytest.mark.timeout_guarded

CFG = CodecConfig(width=128, height=96, search_range=8, num_ref_frames=2)


@pytest.fixture
def journal():
    JOURNAL.reset()
    JOURNAL.enable()
    yield JOURNAL
    JOURNAL.disable()
    JOURNAL.reset()


class TestStoreLifecycle:
    def test_view_after_close_caught(self, journal):
        store = SharedFrameStore(CFG)
        store.view("cur")
        store.close()
        with pytest.raises(RuntimeError, match="closed"):
            store.view("cur")
        report = check_events(journal.drain())
        assert any(
            v.rule == "SAN-G1" and "view()" in v.message
            for v in report.violations
        )

    def test_double_close_is_legal(self, journal):
        store = SharedFrameStore(CFG)
        store.close()
        store.close()  # idempotent by spec: closed -> closed
        report = check_events(journal.drain())
        assert report.clean, report.summary()

    def test_leaked_store_caught_at_teardown(self, journal):
        store = SharedFrameStore(CFG)
        store.view("cur")
        # ... and the owner forgets to close it.
        report = check_events(journal.drain())
        try:
            assert any(
                v.rule == "SAN-G2" and "never shut down" in v.message
                for v in report.violations
            )
        finally:
            store.close()  # release the real segments either way

    def test_closed_store_satisfies_teardown(self, journal):
        store = SharedFrameStore(CFG)
        store.view("cur")
        store.close()
        report = check_events(journal.drain())
        assert report.clean, report.summary()


class TestProcessBackendClean:
    def test_two_worker_encode_journals_clean(self, journal):
        seq = SyntheticSequence(width=128, height=96, seed=13, noise_sigma=1.5)
        frames = seq.frames(3)
        fw = FevesFramework(
            get_platform("SysHK"),
            CFG,
            FrameworkConfig(
                compute="real", backend="process", exec_workers=2
            ),
        )
        with fw:
            out = fw.encode(frames)
        assert all(o.encoded is not None for o in out)
        events = journal.drain()
        # The run must have journaled the full lifecycle of both
        # process-backend owners: the segment store and the kernel pool.
        classes = {e.cls for e in events}
        assert {"SharedFrameStore", "KernelPool"} <= classes
        report = check_events(events)
        assert report.clean, report.summary()

    def test_check_protocols_drains_global_journal(self, journal):
        store = SharedFrameStore(CFG)
        store.close()
        # The TimelineSanitizer entry point reads (and drains) the
        # module-level journal when no events are passed.
        report = TimelineSanitizer.check_protocols()
        assert report.clean, report.summary()
        assert len(journal) == 0
