"""Shared guards for the process-backend tests.

A deadlocked worker pool (a worker that never attaches, a lost task, a
barrier that never fills) would otherwise hang the whole suite, so every
test in this package runs under a hard wall-clock alarm. The repo
deliberately has no pytest-timeout dependency; ``SIGALRM`` gives the
same fail-fast behavior on POSIX, and on platforms without it the guard
degrades to a no-op (the backend's own per-task timeout still applies,
see ``ProcessBackend.task_timeout_s``).
"""

from __future__ import annotations

import signal
from collections.abc import Iterator

import pytest

#: Hard per-test wall-clock ceiling. Generous: the slowest test here
#: encodes a few 128x96 frames per worker count, well under a minute
#: even on a loaded single-core CI runner.
GUARD_S = 300


@pytest.fixture(autouse=True)
def _wallclock_guard() -> Iterator[None]:
    sigalrm = getattr(signal, "SIGALRM", None)
    if sigalrm is None:  # non-POSIX: rely on the backend task timeout
        yield
        return

    def _fire(signum: int, frame: object) -> None:
        raise RuntimeError(
            f"test exceeded the {GUARD_S}s wall-clock guard "
            "(deadlocked worker pool?)"
        )

    previous = signal.signal(sigalrm, _fire)
    signal.alarm(GUARD_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(sigalrm, previous)
