"""The process execution backend: bit-exactness, lifecycle, calibration.

The backend's contract is brutal and simple: *really* executing the
LP-assigned schedule on a multiprocessing worker pool must produce the
exact bitstream the sequential reference encoder produces — same bits,
same reconstruction, same mode decisions — for every worker count, while
the measured timeline and the calibration loop carry real wall-clock
signal instead of simulated times.
"""

from __future__ import annotations

import glob

import numpy as np
import pytest

from repro.codec.config import CodecConfig
from repro.codec.encoder import ReferenceEncoder
from repro.core.config import FrameworkConfig
from repro.core.framework import FevesFramework
from repro.exec.backend import ProcessBackend, split_band, worker_group_sizes
from repro.exec.shm import SharedFrameStore, slot_specs
from repro.hw.noise import FaultEvent, FaultSchedule
from repro.hw.presets import get_platform
from repro.video.generator import SyntheticSequence

pytestmark = pytest.mark.timeout_guarded

CFG = CodecConfig(width=128, height=96, search_range=8, num_ref_frames=2)
N_FRAMES = 5


@pytest.fixture(scope="module")
def frames():
    seq = SyntheticSequence(width=128, height=96, seed=13, noise_sigma=1.5)
    return seq.frames(N_FRAMES)


@pytest.fixture(scope="module")
def reference(frames):
    return ReferenceEncoder(CFG).encode_sequence(frames)


def encode_process(frames, workers, platform="SysHK", cfg=CFG, **fw_kwargs):
    fw = FevesFramework(
        get_platform(platform),
        cfg,
        FrameworkConfig(
            compute="real", backend="process", exec_workers=workers,
            **fw_kwargs,
        ),
    )
    with fw:
        out = fw.encode(frames)
        summary = fw.accuracy_report().summary()
    return out, fw, summary


def assert_identical(ref_out, fev_out):
    assert len(ref_out) == len(fev_out)
    for r, o in zip(ref_out, fev_out, strict=True):
        e = o.encoded
        assert e is not None
        assert r.bits == e.bits, f"frame {r.index}: bits differ"
        assert r.mode_histogram == e.mode_histogram
        np.testing.assert_array_equal(r.recon.y, e.recon.y)
        np.testing.assert_array_equal(r.recon.u, e.recon.u)
        np.testing.assert_array_equal(r.recon.v, e.recon.v)


# ---------------------------------------------------------------------------
# band / group arithmetic


class TestBandMath:
    def test_split_band_partitions_exactly(self):
        for band in [(0, 7), (3, 16), (5, 6), (0, 1)]:
            for n in (1, 2, 3, 8):
                chunks = split_band(band, n)
                assert chunks[0][0] == band[0]
                assert chunks[-1][1] == band[1]
                for (a0, a1), (b0, _b1) in zip(
                    chunks, chunks[1:], strict=False
                ):
                    assert a1 == b0
                    assert a1 > a0
                assert len(chunks) == min(n, band[1] - band[0])

    def test_split_band_near_equal(self):
        sizes = [b - a for a, b in split_band((0, 10), 3)]
        assert max(sizes) - min(sizes) <= 1

    def test_empty_band(self):
        assert split_band((4, 4), 2) == []
        assert split_band((5, 3), 2) == []

    def test_worker_group_sizes_cover_all_devices(self):
        # Every device gets >= 1 worker even when the pool is smaller.
        assert worker_group_sizes(3, 1) == [1, 1, 1]
        assert worker_group_sizes(2, 5) == [3, 2]
        assert sum(worker_group_sizes(4, 11)) == 11
        with pytest.raises(ValueError):
            worker_group_sizes(0, 4)


# ---------------------------------------------------------------------------
# bit-exactness


class TestBitExactness:
    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_matches_reference_across_worker_counts(
        self, frames, reference, workers
    ):
        out, _fw, _acc = encode_process(frames, workers)
        assert_identical(reference, out)

    @pytest.mark.parametrize("platform", ["SysNF", "SysNFF"])
    def test_matches_reference_across_platforms(
        self, frames, reference, platform
    ):
        # Different platforms → different LP row splits → different chunk
        # sets; the stitched result must not care.
        out, _fw, _acc = encode_process(frames, 2, platform=platform)
        assert_identical(reference, out)

    def test_matches_simulated_real_mode(self, frames):
        # The sim backend in real mode is itself reference-exact; the two
        # backends must agree with each other frame for frame.
        sim_fw = FevesFramework(
            get_platform("SysHK"), CFG, FrameworkConfig(compute="real")
        )
        sim_out = sim_fw.encode(frames)
        out, _fw, _acc = encode_process(frames, 2)
        for s, p in zip(sim_out, out, strict=True):
            assert s.encoded.bits == p.encoded.bits
            np.testing.assert_array_equal(s.encoded.recon.y, p.encoded.recon.y)

    def test_gop_refresh_stays_identical(self):
        seq = SyntheticSequence(width=128, height=96, seed=21, noise_sigma=1.0)
        frames = seq.frames(7)
        ref = ReferenceEncoder(CFG, gop_size=3).encode_sequence(frames)
        out, _fw, _acc = encode_process(frames, 2, gop_size=3)
        assert_identical(ref, out)


# ---------------------------------------------------------------------------
# measured timelines + calibration loop


class TestMeasurement:
    def test_timeline_is_measured_and_ordered(self, frames):
        out, _fw, _acc = encode_process(frames, 2)
        rep = out[-1].report
        assert rep.tau1 > 0
        assert rep.tau1 <= rep.tau2 <= rep.tau_tot
        recs = rep.timeline.records
        assert recs, "measured timeline must carry op records"
        by_cat = {}
        for r in recs:
            by_cat.setdefault(r.category, []).append(r)
            assert 0.0 <= r.start <= r.end
        labels = " ".join(r.label for r in by_cat["compute"])
        for tag in ("ME[", "INT[", "SME[", "R*["):
            assert tag in labels
        # phase-1 work ends by the measured τ1 barrier, SME by τ2.
        for r in by_cat["compute"]:
            if r.label.startswith(("ME[", "INT[")):
                assert r.end <= rep.tau1 + 1e-9
            elif r.label.startswith("SME["):
                assert r.end <= rep.tau2 + 1e-9

    def test_calibration_feeds_characterization(self, frames):
        _out, fw, _acc = encode_process(frames, 2, calibrate=True)
        perf = fw.perf
        # Every device that got ME rows last frame holds a *measured*
        # (non-prior) per-row rate estimate.
        dist = fw.reports[-1].decision
        for i, dev in enumerate(fw.platform.devices):
            if dist.m.rows[i] > 0:
                assert perf.k_compute(dev.name, "me") is not None, dev.name
                assert not perf.is_prior(dev.name, "me"), dev.name

    def test_accuracy_report_covers_lp_frames(self, frames):
        _out, fw, acc = encode_process(frames, 2)
        lp_frames = sum(1 for rep in fw.reports if rep.decision.used_lp)
        assert acc["frames"] == lp_frames > 0
        assert acc["makespan_error_mean"] >= 0.0
        assert acc["makespan_error_max"] >= acc["makespan_error_mean"]
        assert set(acc["phase_error_mean"]) <= {"tau1", "tau2", "tau_tot"}

    def test_uncalibrated_mode_feeds_model_rates(self, frames):
        # calibrate=False must seed the characterization from the device
        # model, so predictions are machine-independent.
        _out, fw, acc = encode_process(frames, 2, calibrate=False)
        fed = 0
        for dev in fw.platform.devices:
            k = fw.perf.k_compute(dev.name, "int")
            if k is not None and not fw.perf.is_prior(dev.name, "int"):
                # Constant model rate in → constant EWMA out, exactly.
                assert k == pytest.approx(dev.spec.rates.int_row_s(CFG))
                fed += 1
        assert fed > 0
        assert acc["frames"] > 0


# ---------------------------------------------------------------------------
# lifecycle: shared memory + pool + config guards


class TestLifecycle:
    def test_store_slots_cover_schedule(self):
        keys = {s.key for s in slot_specs(CFG)}
        assert keys == {"cur", "ref0", "ref1", "sf0", "sf1"}

    def test_store_unlinks_on_close(self):
        store = SharedFrameStore(CFG)
        names = [seg.name for seg in store._segments.values()]
        assert names
        store.close()
        for n in names:
            assert not glob.glob(f"/dev/shm/*{n.lstrip('/')}*"), n
        store.close()  # idempotent

    def test_view_after_close_raises(self):
        store = SharedFrameStore(CFG)
        store.close()
        with pytest.raises(RuntimeError, match="closed"):
            store.view("cur")
        # The deliberate use-after-close above is exactly what SAN-G1
        # exists to catch; keep it out of the strict-mode teardown check
        # (tests/exec/test_protocols_exec.py pins that it IS caught).
        from repro.sanitizers.protocols.journal import JOURNAL

        JOURNAL.drain()

    def test_framework_close_is_idempotent(self, frames):
        fw = FevesFramework(
            get_platform("SysHK"), CFG,
            FrameworkConfig(compute="real", backend="process", exec_workers=1),
        )
        fw.encode(frames[:2])
        assert isinstance(fw.manager, ProcessBackend)
        fw.close()
        fw.close()

    def test_backend_requires_real_compute(self):
        with pytest.raises(ValueError, match="compute='real'"):
            FrameworkConfig(backend="process")

    def test_backend_rejects_faults(self):
        faults = FaultSchedule([FaultEvent(frame=1, device="GPU_H", kind="dropout")])
        with pytest.raises(ValueError, match="fault"):
            FrameworkConfig(compute="real", backend="process", faults=faults)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            FrameworkConfig(backend="gpu-cluster")

    def test_run_frame_requires_context(self):
        be = ProcessBackend(
            get_platform("SysHK"), CFG,
            FrameworkConfig(compute="real", backend="process", exec_workers=1),
        )
        with be, pytest.raises(ValueError, match="RealContext"):
            be.run_frame(
                frame_index=1, decision=None, rstar_device="GPU_H",
                plan=None, active_refs=1, perf=None, ctx=None,
            )


# ---------------------------------------------------------------------------
# service integration: a process-backed session really encodes


class TestServiceIntegration:
    def test_process_session_round_trip(self):
        from repro.service import EncodingService, ServiceConfig, StreamSpec

        service = EncodingService(ServiceConfig(
            platform="SysHK", headroom=8.0,
            backend="process", exec_workers=1,
        ))
        metrics = service.run([StreamSpec(
            stream_id="s0", width=64, height=48, n_frames=2,
            fps_target=1.0, search_range=4, num_ref_frames=1,
        )])
        assert metrics.streams[0].frames == 2
        # Measured latencies are real wall milliseconds, not simulated.
        assert metrics.streams[0].p50_ms > 0
        for session in service.sessions:
            assert session.framework.manager._pool is None  # closed

    def test_service_config_rejects_faulted_process_backend(self):
        from repro.service import ServiceConfig

        faults = FaultSchedule([FaultEvent(frame=1, device="GPU_H", kind="dropout")])
        with pytest.raises(ValueError, match="fault"):
            ServiceConfig(platform="SysHK", backend="process", faults=faults)
