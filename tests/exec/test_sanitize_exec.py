"""SAN-F: the shared-memory access journal and its sanitizer.

The static layer (REP201-REP204) proves the *shape* of the process
backend is race-free; SAN-F verifies the *actual interleavings*: under
``sanitize`` every worker task journals the byte-row intervals it read
and wrote (built from the same bounds the accesses use), and
``TimelineSanitizer.check_exec`` proves concurrent writes are pairwise
disjoint and every read is covered by strictly-earlier-phase writes.

The overlapping-band mutant at the bottom is the agreement test: the
same seeded bug is caught dynamically (SAN-F1, from the journal of a
real run) and statically (REP203, from the mutant's own source).
"""

from __future__ import annotations

import inspect
import multiprocessing
import textwrap
import time

import pytest

from repro.codec.config import MB_SIZE, CodecConfig
from repro.codec.encoder import ReferenceEncoder
from repro.codec.interpolation import interpolate_rows
from repro.core.config import FrameworkConfig
from repro.core.framework import FevesFramework
from repro.exec import pool as pool_mod
from repro.exec.pool import KernelPool, resolve_start_method, task_timeout_from_env
from repro.exec.shm import PHASE_P1
from repro.hw.presets import get_platform
from repro.sanitizers import TimelineSanitizer
from repro.sanitizers.violations import ScheduleViolationError
from repro.video.generator import SyntheticSequence

pytestmark = pytest.mark.timeout_guarded

CFG = CodecConfig(width=128, height=96, search_range=8, num_ref_frames=2)
N_FRAMES = 3


@pytest.fixture(scope="module")
def frames():
    seq = SyntheticSequence(width=128, height=96, seed=13, noise_sigma=1.5)
    return seq.frames(N_FRAMES)


@pytest.fixture(scope="module")
def reference(frames):
    return ReferenceEncoder(CFG).encode_sequence(frames)


def encode_sanitized(frames, workers, **fw_kwargs):
    fw = FevesFramework(
        get_platform("SysHK"),
        CFG,
        FrameworkConfig(
            compute="real", backend="process", exec_workers=workers,
            **fw_kwargs,
        ),
    )
    fw.manager.sanitize = True
    with fw:
        out = fw.encode(frames)
    return out, dict(fw.manager.exec_journal)


def assert_identical(ref_out, fev_out):
    import numpy as np

    for r, o in zip(ref_out, fev_out, strict=True):
        assert o.encoded is not None
        assert r.bits == o.encoded.bits, f"frame {r.index}: bits differ"
        np.testing.assert_array_equal(r.recon.y, o.encoded.recon.y)


# ---------------------------------------------------------------------------
# clean runs: journal populated, sanitizer clean, output still bit-exact


class TestSanFClean:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_clean_at_worker_counts(self, frames, reference, workers):
        out, journal = encode_sanitized(frames, workers)
        assert_identical(reference, out)
        # Frame 0 is intra (no parallel phase); every inter frame must
        # have journaled its staging, phase-1 and phase-2 accesses.
        assert sorted(journal) == list(range(1, N_FRAMES))
        for frame, entries in sorted(journal.items()):
            assert entries, f"frame {frame} journaled nothing"
            assert {e.kind for e in entries} == {"r", "w"}
            TimelineSanitizer.check_exec(entries, frame=frame).raise_if_dirty()

    def test_journal_off_by_default(self, frames, monkeypatch):
        # Neutralize a strict-mode suite run: off means env unset too.
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        fw = FevesFramework(
            get_platform("SysHK"),
            CFG,
            FrameworkConfig(
                compute="real", backend="process", exec_workers=2,
            ),
        )
        with fw:
            fw.encode(frames)
        assert fw.manager.exec_journal == {}


# ---------------------------------------------------------------------------
# the seeded mutant: one extra px band past the task's own write window


def _overlapping_int_task(row0, nrows):
    """``int_task`` writing one extra SF band past ``(row0, nrows)``."""
    t0 = time.perf_counter()
    band = interpolate_rows(pool_mod._rf_view(), row0, nrows)
    px = 4 * MB_SIZE
    view = pool_mod._VIEWS["sf0"]
    lo = px * row0
    hi = px * (row0 + nrows)
    stop = min(hi + px, view.shape[0])
    view[lo:hi, :] = band
    view[hi:stop, :] = band[: stop - hi, :]
    entries = pool_mod._journal(
        f"int rows {row0}+{nrows}", PHASE_P1,
        [("ref0", 0, pool_mod._VIEWS["ref0"].shape[0], "r"),
         ("sf0", lo, stop, "w")],
    )
    return None, t0, time.perf_counter(), entries


needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="mutant injection relies on fork inheriting the patched module",
)


class TestSanFCatchesMutant:
    @needs_fork
    def test_dynamic_overlap_is_caught(self, frames, monkeypatch):
        # Patch before the pool exists: forked workers inherit the
        # mutant, and submit_int picks it up via the module global.
        monkeypatch.setenv(pool_mod.START_METHOD_ENV, "fork")
        monkeypatch.setattr(pool_mod, "int_task", _overlapping_int_task)
        try:
            _, journal = encode_sanitized(frames, workers=4)
        except ScheduleViolationError as exc:
            # Under REPRO_SANITIZE=strict the autouse fixture checks the
            # journal per frame and flags the overlap before we can.
            assert any(v.rule == "SAN-F1" for v in exc.violations)
            return
        hits = []
        for frame, entries in sorted(journal.items()):
            report = TimelineSanitizer.check_exec(entries, frame=frame)
            hits += [v for v in report.violations if v.rule == "SAN-F1"]
        assert hits, "overlapping writes escaped the sanitizer"
        assert all(v.where == "sf0" for v in hits)

    def test_static_twin_agrees(self):
        # The *same* mutant source fails REP203: the extended write's
        # upper bound is not provably inside the (row0, nrows) band.
        from repro.sanitizers.concurrency import analyze_source

        src = textwrap.dedent(inspect.getsource(_overlapping_int_task))
        violations, errors = analyze_source(
            src, "src/repro/exec/mutant.py", select=["REP203"]
        )
        assert not errors
        assert any(v.rule == "REP203" for v in violations)

    def test_clean_int_task_source_passes(self):
        from repro.sanitizers.concurrency import analyze_source

        src = textwrap.dedent(inspect.getsource(pool_mod.int_task))
        violations, errors = analyze_source(
            src, "src/repro/exec/pool.py", select=["REP203"]
        )
        assert not errors
        assert not violations, [str(v) for v in violations]


# ---------------------------------------------------------------------------
# eager environment validation (satellite: fail at construction, named)


class TestEnvValidation:
    def test_invalid_start_method_named_eagerly(self, monkeypatch):
        monkeypatch.setenv(pool_mod.START_METHOD_ENV, "warp-drive")
        with pytest.raises(ValueError) as exc:
            KernelPool(1, {}, CFG)
        assert "$REPRO_EXEC_START_METHOD" in str(exc.value)
        assert "'warp-drive'" in str(exc.value)

    def test_invalid_arg_start_method_names_the_arg(self):
        with pytest.raises(ValueError, match="start_method"):
            resolve_start_method("warp-drive")

    @pytest.mark.parametrize("bad", ["soon", "-5", "0", "inf", "nan"])
    def test_invalid_timeout_named_eagerly(self, monkeypatch, bad):
        monkeypatch.setenv(pool_mod.TASK_TIMEOUT_ENV, bad)
        with pytest.raises(ValueError) as exc:
            KernelPool(1, {}, CFG)
        assert "$REPRO_EXEC_TIMEOUT_S" in str(exc.value)
        assert repr(bad) in str(exc.value)

    def test_valid_overrides_are_applied(self, monkeypatch):
        monkeypatch.setenv(pool_mod.TASK_TIMEOUT_ENV, "2.5")
        assert task_timeout_from_env() == 2.5
        pool = KernelPool(1, {}, CFG)
        try:
            assert pool.task_timeout_s == 2.5
            assert pool.start_method == resolve_start_method()
        finally:
            pool.close()


# ---------------------------------------------------------------------------
# spawn start-method smoke (satellite: bit-identity under spawn)


class TestSpawnSmoke:
    @pytest.mark.skipif(
        "spawn" not in multiprocessing.get_all_start_methods(),
        reason="platform has no spawn start method",
    )
    def test_spawn_backend_is_bit_identical(self, frames, reference,
                                            monkeypatch):
        monkeypatch.setenv(pool_mod.START_METHOD_ENV, "spawn")
        fw = FevesFramework(
            get_platform("SysHK"),
            CFG,
            FrameworkConfig(
                compute="real", backend="process", exec_workers=2,
            ),
        )
        with fw:
            out = fw.encode(frames)
            assert fw.manager._pool is not None
            assert fw.manager._pool.start_method == "spawn"
        assert_identical(reference, out)
