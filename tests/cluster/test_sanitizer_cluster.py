"""SAN-E cluster invariants: ownership, live windows, conservation."""

import pytest

from repro.cluster import (
    Cluster,
    ClusterConfig,
    NodeFaultEvent,
    NodeFaultSchedule,
    NodeSpec,
)
from repro.sanitizers import ScheduleViolationError, TimelineSanitizer
from repro.sanitizers.violations import SCHED_RULES
from repro.service import build_workload


@pytest.fixture(scope="module")
def faulted_cluster():
    """A 4-node mixed fleet with an n0 dropout mid-run (module-shared)."""
    wl = build_workload(8, n_frames=6, fps_target=25.0, seed=3)
    cluster = Cluster(ClusterConfig(
        nodes=(
            NodeSpec("n0", platform="SysHK"),
            NodeSpec("n1", platform="SysNF"),
            NodeSpec("n2", platform="SysNFF"),
            NodeSpec("n3", platform="SysHK"),
        ),
        policy="slack",
        node_faults=NodeFaultSchedule(
            [NodeFaultEvent("n0", at_s=0.15, kind="down")]
        ),
    ))
    cluster.run(wl)
    return cluster


def test_san_e_rules_registered():
    assert {"SAN-E1", "SAN-E2", "SAN-E3"} <= set(SCHED_RULES)


def test_faulted_fleet_is_clean(faulted_cluster):
    report = TimelineSanitizer.check_cluster(faulted_cluster)
    assert report.clean, report.summary()


def test_corrupted_offset_fires_e3(faulted_cluster):
    st = next(
        s for s in faulted_cluster.dispatcher.streams.values()
        if len(s.segments) > 1
    )
    st.segments[1].offset += 1
    try:
        report = TimelineSanitizer.check_cluster(faulted_cluster)
    finally:
        st.segments[1].offset -= 1
    assert any(v.rule == "SAN-E3" for v in report.violations)


def test_overlapping_ownership_fires_e1(faulted_cluster):
    st = next(
        s for s in faulted_cluster.dispatcher.streams.values()
        if len(s.segments) > 1
    )
    seg = st.segments[1]
    orig = seg.t_routed
    seg.t_routed = st.segments[0].t_evicted - 0.01
    try:
        report = TimelineSanitizer.check_cluster(faulted_cluster)
    finally:
        seg.t_routed = orig
    assert any(v.rule == "SAN-E1" for v in report.violations)


def test_unknown_node_fires_e2(faulted_cluster):
    st = next(iter(faulted_cluster.dispatcher.streams.values()))
    seg = st.segments[0]
    orig = seg.node_id
    seg.node_id = "ghost"
    try:
        report = TimelineSanitizer.check_cluster(faulted_cluster)
    finally:
        seg.node_id = orig
    assert any(v.rule == "SAN-E2" for v in report.violations)


def test_placement_after_retirement_fires_e2(faulted_cluster):
    # Pretend a segment was routed to n0 after its dropout.
    st = next(
        s for s in faulted_cluster.dispatcher.streams.values()
        if s.segments[0].node_id == "n0"
    )
    seg = st.segments[0]
    orig = seg.t_routed
    seg.t_routed = 0.5   # n0 retired at 0.15
    try:
        report = TimelineSanitizer.check_cluster(faulted_cluster)
    finally:
        seg.t_routed = orig
    assert any(v.rule == "SAN-E2" for v in report.violations)


def test_node_violations_are_namespaced(faulted_cluster):
    # Delegated per-node checks anchor under "node_id:..." — prove the
    # delegation runs by corrupting one session's share record.
    node = faulted_cluster.node("n3")
    session = node.service.sessions[0]
    rec = session.records[0]
    orig = rec.share
    object.__setattr__(rec, "share", 2.0)   # frozen dataclass
    try:
        report = TimelineSanitizer.check_cluster(faulted_cluster)
    finally:
        object.__setattr__(rec, "share", orig)
    hits = [v for v in report.violations if v.rule == "SAN-D1"]
    assert hits and all(v.where.startswith("n3:") for v in hits)


def test_strict_env_raises_on_dirty(monkeypatch):
    """REPRO_SANITIZE=1 makes Cluster.run raise on a violation."""
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    wl = build_workload(2, n_frames=2, fps_target=25.0)
    cluster = Cluster(ClusterConfig(nodes=(NodeSpec("n0"),)))

    # Sabotage conservation right before collection by patching the
    # sanitize hook's view: run normally first, then re-check dirty.
    m = cluster.run(wl)   # clean run must not raise
    st = next(iter(cluster.dispatcher.streams.values()))
    st.segments[0].offset = 5
    with pytest.raises(ScheduleViolationError):
        TimelineSanitizer.check_cluster(cluster).raise_if_dirty()
