"""Routing policies: selection, scoring, and deterministic tie-breaks."""

import pytest

from repro.cluster.node import Node, NodeSpec
from repro.cluster.routing import (
    ROUTING_POLICIES,
    ClassAffinityPolicy,
    LeastLoadedPolicy,
    SlackAwarePolicy,
    get_policy,
)
from repro.service.session import StreamSpec


def make_fleet(platforms):
    return [
        Node(NodeSpec(node_id=f"n{i}", platform=p), index=i)
        for i, p in enumerate(platforms)
    ]


class TestRegistry:
    def test_all_policies_registered(self):
        assert set(ROUTING_POLICIES) == {"least-loaded", "slack", "affinity"}

    def test_get_policy_returns_instances(self):
        assert isinstance(get_policy("least-loaded"), LeastLoadedPolicy)
        assert isinstance(get_policy("slack"), SlackAwarePolicy)
        assert isinstance(get_policy("affinity"), ClassAffinityPolicy)

    def test_unknown_policy_lists_available(self):
        with pytest.raises(ValueError, match="least-loaded"):
            get_policy("round-robin")


class TestTieBreaking:
    """Identical nodes must tie-break on insertion index, never on id."""

    def test_empty_identical_fleet_picks_lowest_index(self):
        nodes = make_fleet(["SysHK", "SysHK", "SysHK"])
        spec = StreamSpec("a", n_frames=2)
        for name in ROUTING_POLICIES:
            chosen = get_policy(name).choose(nodes, spec, now=0.0)
            assert chosen is nodes[0], name

    def test_tie_break_ignores_node_id_ordering(self):
        # Reverse-sorted ids: if any policy compared ids the pick flips.
        nodes = [
            Node(NodeSpec(node_id="z", platform="SysHK"), index=0),
            Node(NodeSpec(node_id="a", platform="SysHK"), index=1),
        ]
        spec = StreamSpec("a", n_frames=2)
        for name in ROUTING_POLICIES:
            assert get_policy(name).choose(nodes, spec, 0.0).node_id == "z", name

    def test_loaded_node_loses_the_tie(self):
        nodes = make_fleet(["SysHK", "SysHK"])
        nodes[0].offer(StreamSpec("busy", n_frames=4, fps_target=25.0), 0.0)
        chosen = get_policy("least-loaded").choose(
            nodes, StreamSpec("b", n_frames=2), 0.0
        )
        assert chosen is nodes[1]


class TestPolicyBehavior:
    def test_non_accepting_nodes_skipped(self):
        nodes = make_fleet(["SysHK", "SysHK"])
        from repro.cluster.node import DOWN

        nodes[0].retire(0.0, DOWN)
        chosen = get_policy("least-loaded").choose(
            nodes, StreamSpec("a", n_frames=2), 0.0
        )
        assert chosen is nodes[1]

    def test_no_live_node_returns_none(self):
        from repro.cluster.node import DOWN

        nodes = make_fleet(["SysHK"])
        nodes[0].retire(0.0, DOWN)
        assert get_policy("slack").choose(nodes, StreamSpec("a", 2), 0.0) is None

    def test_full_nodes_rank_behind_nodes_with_room(self):
        nodes = make_fleet(["SysHK", "SysHK"])
        # Saturate node 0's capacity and queue so has_room goes False.
        n = 0
        while nodes[0].has_room(StreamSpec(f"x{n}", n_frames=2, fps_target=25.0)):
            nodes[0].offer(StreamSpec(f"x{n}", n_frames=2, fps_target=25.0), 0.0)
            n += 1
        chosen = get_policy("least-loaded").choose(
            nodes, StreamSpec("a", n_frames=2), 0.0
        )
        assert chosen is nodes[1]

    def test_affinity_sends_realtime_to_fastest(self):
        nodes = make_fleet(["SysNF", "SysHK"])  # fast node second
        rt = StreamSpec("rt", n_frames=2, deadline_class="realtime")
        bg = StreamSpec("bg", n_frames=2, deadline_class="background")
        policy = get_policy("affinity")
        assert policy.choose(nodes, rt, 0.0).platform == "SysHK"
        assert policy.choose(nodes, bg, 0.0).platform == "SysNF"

    def test_slack_prefers_node_with_lower_wait_for_tight_deadline(self):
        nodes = make_fleet(["SysHK", "SysHK"])
        nodes[0].offer(StreamSpec("busy", n_frames=8, fps_target=25.0), 0.0)
        rt = StreamSpec("rt", n_frames=2, deadline_class="realtime")
        assert get_policy("slack").choose(nodes, rt, 0.0) is nodes[1]
