"""Fleet node: offer outcomes, stepping, eviction, capacity probes."""

import pytest

from repro.cluster.node import DOWN, DRAINED, EVICTED, UP, Node, NodeSpec
from repro.service.admission import ADMITTED, QUEUED, REJECTED
from repro.service.service import DONE, ENCODED, IDLE
from repro.service.session import StreamSpec


def make_node(**kw):
    spec_kw = {"node_id": "n0", "platform": "SysHK"}
    spec_kw.update(kw)
    return Node(NodeSpec(**spec_kw))


class TestNodeSpec:
    def test_rejects_empty_node_id(self):
        with pytest.raises(ValueError, match="node_id"):
            NodeSpec(node_id="")

    def test_defaults(self):
        spec = NodeSpec(node_id="a")
        assert spec.platform == "SysHK"
        assert spec.headroom == 1.0
        assert spec.max_queue == 8


class TestOffer:
    def test_admits_when_capacity_free(self):
        node = make_node()
        session, outcome = node.offer(StreamSpec("a", n_frames=2), now=0.0)
        assert outcome == ADMITTED
        assert node.n_running == 1

    def test_queues_when_saturated(self):
        node = make_node()
        outcomes = [
            node.offer(StreamSpec(f"s{i}", n_frames=2, fps_target=25.0), 0.0)[1]
            for i in range(8)
        ]
        assert outcomes[0] == ADMITTED
        assert QUEUED in outcomes

    def test_rejects_beyond_queue_bound(self):
        node = make_node(max_queue=1)
        outcomes = [
            node.offer(StreamSpec(f"s{i}", n_frames=2, fps_target=25.0), 0.0)[1]
            for i in range(8)
        ]
        assert REJECTED in outcomes

    def test_offer_advances_clock_monotonically(self):
        node = make_node()
        node.offer(StreamSpec("a", n_frames=2), now=0.5)
        assert node.now == 0.5
        node.offer(StreamSpec("b", n_frames=2), now=0.2)  # never rewinds
        assert node.now == 0.5


class TestStep:
    def test_step_encodes_one_round(self):
        node = make_node()
        node.offer(StreamSpec("a", n_frames=2), 0.0)
        assert node.step() == ENCODED
        assert node.service.rounds == 1

    def test_step_runs_to_done(self):
        node = make_node()
        node.offer(StreamSpec("a", n_frames=2), 0.0)
        states = []
        while (st := node.step()) != DONE:
            states.append(st)
        assert states and all(s in (ENCODED, IDLE) for s in states)
        assert len(node.service.sessions[0].records) == 2

    def test_next_action_none_when_empty(self):
        assert make_node().next_action_s() is None

    def test_next_action_is_now_when_work_pending(self):
        node = make_node()
        node.offer(StreamSpec("a", n_frames=2), 0.0)
        assert node.next_action_s() == node.now

    def test_next_action_none_when_retired(self):
        node = make_node()
        node.offer(StreamSpec("a", n_frames=2), 0.0)
        node.retire(0.0, DOWN)
        assert node.next_action_s() is None


class TestEviction:
    def test_evict_all_returns_running_and_queued(self):
        node = make_node(max_queue=8)
        for i in range(6):
            node.offer(StreamSpec(f"s{i}", n_frames=3, fps_target=25.0), 0.0)
        running, queued = node.evict_all(0.1)
        assert len(running) >= 1
        assert len(running) + len(queued) == 6
        assert node.idle

    def test_evicted_sessions_marked(self):
        node = make_node()
        node.offer(StreamSpec("a", n_frames=3), 0.0)
        running, _ = node.evict_all(0.1)
        assert all(s.state == EVICTED for s in running)

    def test_queued_sessions_leave_service_roster(self):
        node = make_node()
        for i in range(6):
            node.offer(StreamSpec(f"s{i}", n_frames=3, fps_target=25.0), 0.0)
        _, queued = node.evict_all(0.1)
        ids = {s.stream_id for s in node.service.sessions}
        assert not ids & {s.stream_id for s in queued}

    def test_retire_states(self):
        node = make_node()
        assert node.state == UP and node.accepting
        node.retire(0.3, DRAINED)
        assert node.state == DRAINED
        assert not node.accepting
        assert node.retired_s == 0.3


class TestCapacityProbes:
    def test_has_room_true_when_empty(self):
        assert make_node().has_room(StreamSpec("a", n_frames=2))

    def test_load_grows_with_admissions(self):
        node = make_node()
        before = node.load()
        node.offer(StreamSpec("a", n_frames=2, fps_target=25.0), 0.0)
        assert node.load() > before

    def test_demand_fraction_scales_with_fps(self):
        node = make_node()
        lo = node.demand_fraction(StreamSpec("a", n_frames=2, fps_target=10.0))
        hi = node.demand_fraction(StreamSpec("b", n_frames=2, fps_target=30.0))
        assert hi > lo

    def test_fps_capacity_orders_platforms(self):
        fast = make_node(platform="SysHK")
        slow = Node(NodeSpec(node_id="n1", platform="SysNF"))
        spec = StreamSpec("a", n_frames=2)
        assert fast.fps_capacity(spec) > slow.fps_capacity(spec)
