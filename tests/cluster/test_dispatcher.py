"""Cluster dispatch tier: queue semantics, faults, autoscale, metrics."""

import pytest

from repro.cluster import (
    AutoscaleConfig,
    Cluster,
    ClusterConfig,
    NodeFaultEvent,
    NodeFaultSchedule,
    NodeSpec,
)
from repro.cluster.dispatcher import S_REJECTED
from repro.cluster.node import DOWN, DRAINED
from repro.service import StreamSpec, build_workload


def run_fleet(workload, platforms=("SysHK",), **cfg_kw):
    nodes = tuple(
        NodeSpec(node_id=f"n{i}", platform=p) for i, p in enumerate(platforms)
    )
    cluster = Cluster(ClusterConfig(nodes=nodes, **cfg_kw))
    metrics = cluster.run(workload)
    return cluster, metrics


class TestConfig:
    def test_needs_a_node(self):
        with pytest.raises(ValueError, match="at least one node"):
            ClusterConfig(nodes=())

    def test_rejects_duplicate_node_ids(self):
        with pytest.raises(ValueError, match="duplicate"):
            ClusterConfig(nodes=(NodeSpec("a"), NodeSpec("a")))


class TestDispatch:
    def test_all_streams_complete_on_multi_node_fleet(self):
        wl = build_workload(6, n_frames=3, fps_target=25.0)
        cluster, m = run_fleet(wl, platforms=("SysHK", "SysNF"))
        assert m.streams == {"done": 6}
        assert m.frames_encoded == 18

    def test_duplicate_stream_id_rejected(self):
        wl = [StreamSpec("dup", n_frames=2), StreamSpec("dup", n_frames=2)]
        nodes = (NodeSpec("n0"),)
        cluster = Cluster(ClusterConfig(nodes=nodes))
        with pytest.raises(ValueError, match="dup"):
            cluster.run(wl)

    def test_work_spreads_across_nodes(self):
        wl = build_workload(6, n_frames=3, fps_target=25.0)
        _, m = run_fleet(wl, platforms=("SysHK", "SysHK"))
        frames = {n.node_id: n.frames for n in m.nodes}
        assert frames["n0"] > 0 and frames["n1"] > 0

    def test_global_overflow_rejects(self):
        # One slow saturated node, zero global queue: extra streams must
        # be rejected (by the node's controller), exactly like serve.
        wl = build_workload(10, n_frames=2, fps_target=30.0)
        cluster, m = run_fleet(
            wl, platforms=("SysNF",), global_queue=0
        )
        # With queue 0 nothing parks at the cluster tier.
        assert m.dispatch["parked"] == 0
        assert sum(m.streams.values()) == 10

    def test_queue_wait_accounted(self):
        # Tiny node queue forces the global queue to hold streams.
        nodes = (NodeSpec("n0", platform="SysNF", max_queue=0),)
        cluster = Cluster(ClusterConfig(nodes=nodes, global_queue=64))
        wl = build_workload(5, n_frames=2, fps_target=25.0)
        m = cluster.run(wl)
        assert m.dispatch["parked"] > 0
        assert m.queue_wait_max_s > 0.0
        assert m.streams == {"done": 5}


class TestNodeFaults:
    def fleet_with_fault(self, kind):
        wl = build_workload(8, n_frames=6, fps_target=25.0, seed=2)
        faults = NodeFaultSchedule([NodeFaultEvent("n0", at_s=0.15, kind=kind)])
        return run_fleet(
            wl,
            platforms=("SysHK", "SysNF", "SysNFF", "SysHK"),
            policy="slack",
            node_faults=faults,
        )

    def test_dropout_conserves_frames(self):
        cluster, m = self.fleet_with_fault("down")
        assert m.frames_encoded == 8 * 6
        assert m.streams == {"done": 8}
        # Per-stream global frame indices must be exactly 1..n.
        for st in cluster.dispatcher.streams.values():
            indices = sorted(
                seg.offset + r.index
                for seg in st.segments
                for r in seg.session.records
            )
            assert indices == list(range(1, st.spec.n_frames + 1))

    def test_dropout_reroutes_survivors(self):
        cluster, m = self.fleet_with_fault("down")
        assert m.node_faults == 1
        assert m.reroutes >= 1
        assert m.evicted_sessions >= 1
        assert cluster.node("n0").state == DOWN
        rerouted = [
            st for st in cluster.dispatcher.streams.values()
            if len(st.segments) > 1
        ]
        assert rerouted
        assert all(
            seg.node_id != "n0" for st in rerouted for seg in st.segments[1:]
        )

    def test_drain_is_graceful(self):
        cluster, m = self.fleet_with_fault("drain")
        assert cluster.node("n0").state == DRAINED
        assert m.frames_encoded == 8 * 6
        assert m.streams == {"done": 8}

    def test_fault_on_every_node_strands_streams(self):
        wl = [StreamSpec("a", n_frames=20, fps_target=25.0)]
        faults = NodeFaultSchedule([NodeFaultEvent("n0", at_s=0.1)])
        cluster, m = run_fleet(wl, platforms=("SysHK",), node_faults=faults)
        assert m.streams.get("stranded", 0) == 1
        assert m.frames_encoded < 20


class TestAutoscale:
    def test_scales_out_under_pressure(self):
        wl = build_workload(12, n_frames=4, fps_target=25.0)
        nodes = (NodeSpec("n0", platform="SysNF", max_queue=1),)
        cfg = ClusterConfig(
            nodes=nodes,
            autoscale=AutoscaleConfig(
                enabled=True, max_nodes=4, template=("SysHK",),
                queue_high=2, sustain_ticks=2, cooldown_ticks=1,
            ),
        )
        cluster = Cluster(cfg)
        m = cluster.run(wl)
        assert m.n_nodes > 1
        adds = [e for e in m.autoscale_events if e["action"] == "add"]
        assert adds and adds[0]["platform"] == "SysHK"
        assert m.streams == {"done": 12}
        assert m.n_nodes <= 4

    def test_autoscaled_ids_avoid_collision(self):
        wl = build_workload(10, n_frames=3, fps_target=25.0)
        # Operator already owns "n1": the scaler must skip that id.
        nodes = (
            NodeSpec("n0", platform="SysNF", max_queue=1),
            NodeSpec("n1", platform="SysNF", max_queue=1),
        )
        cfg = ClusterConfig(
            nodes=nodes,
            autoscale=AutoscaleConfig(
                enabled=True, max_nodes=4, queue_high=2,
                sustain_ticks=2, cooldown_ticks=1,
            ),
        )
        cluster = Cluster(cfg)
        cluster.run(wl)
        ids = [n.node_id for n in cluster.nodes]
        assert len(set(ids)) == len(ids)

    def test_disabled_by_default(self):
        wl = build_workload(8, n_frames=2, fps_target=25.0)
        cluster, m = run_fleet(wl, platforms=("SysNF",))
        assert m.n_nodes == 1
        assert m.autoscale_events == ()


class TestSharedLpCache:
    def test_same_platform_nodes_share_a_cache(self):
        wl = build_workload(4, n_frames=3, fps_target=25.0)
        cluster, m = run_fleet(wl, platforms=("SysHK", "SysHK"))
        assert set(m.lp_cache) == {"SysHK"}
        assert m.lp_cache["SysHK"]["hits"] > 0

    def test_cache_sharing_can_be_disabled(self):
        wl = build_workload(4, n_frames=3, fps_target=25.0)
        cluster, m = run_fleet(
            wl, platforms=("SysHK", "SysHK"), share_lp_cache=False
        )
        assert m.lp_cache == {}


class TestMetrics:
    def test_per_class_summary_present(self):
        wl = build_workload(6, n_frames=3, mix="conference", seed=1)
        _, m = run_fleet(wl, platforms=("SysHK", "SysNF"))
        assert set(m.classes) <= {"realtime", "standard", "background"}
        total = sum(c["frames"] for c in m.classes.values())
        assert total == m.frames_encoded

    def test_to_dict_round_trips_json(self):
        import json

        wl = build_workload(4, n_frames=2, fps_target=25.0)
        _, m = run_fleet(wl, platforms=("SysHK", "SysNF"))
        blob = json.loads(json.dumps(m.to_dict()))
        assert blob["n_nodes"] == 2
        assert len(blob["nodes"]) == 2
        assert blob["frames_encoded"] == m.frames_encoded

    def test_node_lookup(self):
        wl = build_workload(2, n_frames=2, fps_target=25.0)
        _, m = run_fleet(wl, platforms=("SysHK",))
        assert m.node("n0").platform == "SysHK"
        with pytest.raises(KeyError):
            m.node("nope")
