"""ISSUE acceptance: a mixed 4-node fleet sustains >= 50 concurrent streams."""

from repro.cluster import Cluster, ClusterConfig, NodeSpec
from repro.service import build_workload

MIXED_4 = ("SysHK", "SysNF", "SysNFF", "SysHK")


def test_fleet_of_4_admits_50_concurrent_conference_tiles():
    # 56 low-latency conference tiles (640x368 @ 30 fps, realtime) in one
    # burst: small frames keep per-stream demand low enough that a mixed
    # 4-node fleet holds them all concurrently under a 2x headroom.
    wl = build_workload(56, n_frames=2, mix="conference")
    cluster = Cluster(ClusterConfig(
        nodes=tuple(
            NodeSpec(f"n{i}", platform=p, headroom=2.0, max_queue=16)
            for i, p in enumerate(MIXED_4)
        ),
        policy="least-loaded",
    ))
    m = cluster.run(wl)
    assert m.peak_concurrent >= 50
    assert m.streams == {"done": 56}
    assert m.frames_encoded == 56 * 2
    # Per-class SLO view must be populated with the realtime tail.
    assert "realtime" in m.classes
    assert m.classes["realtime"]["p99_ms"] > 0.0
    # Least-loaded routing spreads the burst over every node.
    assert all(n.frames > 0 for n in m.nodes)
