"""ISSUE acceptance: a single-node cluster is bit-identical to serve.

The fleet loop drives the same ``begin_round``/``submit``/``step_round``
primitives ``EncodingService.run`` is built from, so a one-node fleet
must reproduce the standalone service *exactly* — metrics dict equal,
per-frame timelines equal, no tolerance anywhere.
"""

import pytest

from repro.cluster import Cluster, ClusterConfig, NodeSpec
from repro.service import EncodingService, ServiceConfig, build_workload
from repro.service.session import StreamSpec


def serve_reference(workload, platform="SysHK", **svc_kw):
    svc = EncodingService(ServiceConfig(platform=platform, **svc_kw))
    return svc, svc.run(workload)


def fleet_single(workload, platform="SysHK", **node_kw):
    cluster = Cluster(ClusterConfig(
        nodes=(NodeSpec("n0", platform=platform, **node_kw),),
        global_queue=0,   # rejection parity: overflow hits the node
    ))
    cluster.run(workload)
    return cluster


WORKLOADS = {
    "burst": lambda: build_workload(3, n_frames=4, fps_target=25.0),
    "poisson": lambda: build_workload(
        5, n_frames=3, mix="conference", arrival_rate=15.0, seed=4
    ),
    "staggered": lambda: [
        StreamSpec("a", n_frames=4, fps_target=25.0),
        StreamSpec("b", n_frames=3, fps_target=15.0, arrival_s=0.08,
                   deadline_class="realtime"),
        StreamSpec("c", n_frames=2, fps_target=10.0, arrival_s=0.30,
                   deadline_class="background"),
    ],
    "overload": lambda: build_workload(10, n_frames=2, fps_target=30.0),
}


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_single_node_metrics_bit_identical(name):
    workload = WORKLOADS[name]()
    svc, ref = serve_reference(list(workload))
    cluster = fleet_single(list(workload))
    got = cluster.node("n0").service.metrics
    assert got.to_dict() == ref.to_dict()


@pytest.mark.parametrize("name", ["burst", "staggered"])
def test_single_node_timelines_bit_identical(name):
    workload = WORKLOADS[name]()
    svc, _ = serve_reference(list(workload))
    cluster = fleet_single(list(workload))
    node_svc = cluster.node("n0").service
    assert len(svc.sessions) == len(node_svc.sessions)
    for ref_s, got_s in zip(svc.sessions, node_svc.sessions, strict=True):
        assert ref_s.stream_id == got_s.stream_id
        ref_reports = ref_s.framework.reports
        got_reports = got_s.framework.reports
        for ref_r, got_r in zip(ref_reports, got_reports, strict=True):
            assert got_r.decision == ref_r.decision
            assert got_r.tau_tot == ref_r.tau_tot          # exact
            assert [
                (r.label, r.resource, r.start, r.end)
                for r in got_r.timeline.records
            ] == [
                (r.label, r.resource, r.start, r.end)
                for r in ref_r.timeline.records
            ]


def test_single_node_on_slow_platform_matches_too():
    workload = build_workload(4, n_frames=3, fps_target=20.0)
    svc, ref = serve_reference(list(workload), platform="SysNF")
    cluster = fleet_single(list(workload), platform="SysNF")
    assert cluster.node("n0").service.metrics.to_dict() == ref.to_dict()


def test_cluster_aggregate_mirrors_service_aggregate():
    workload = build_workload(3, n_frames=4, fps_target=25.0)
    _, ref = serve_reference(list(workload))
    cluster = fleet_single(list(workload))
    m = cluster.metrics
    assert m.p99_ms == ref.p99_ms
    assert m.deadline_miss_rate == ref.deadline_miss_rate
    assert m.frames_encoded == sum(sm.frames for sm in ref.streams)
