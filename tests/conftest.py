"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codec.config import CodecConfig
from repro.codec.frames import YuvFrame
from repro.video.generator import SyntheticSequence


@pytest.fixture
def small_cfg() -> CodecConfig:
    """A fast codec configuration for real-compute tests."""
    return CodecConfig(width=128, height=96, search_range=8, num_ref_frames=2)


@pytest.fixture
def tiny_cfg() -> CodecConfig:
    """The smallest sensible configuration (single-MB-row edge cases)."""
    return CodecConfig(width=64, height=48, search_range=4, num_ref_frames=1)


@pytest.fixture
def small_sequence(small_cfg) -> list[YuvFrame]:
    seq = SyntheticSequence(
        width=small_cfg.width, height=small_cfg.height, seed=11, noise_sigma=1.5
    )
    return seq.frames(5)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


def random_frame(rng: np.random.Generator, width: int, height: int) -> YuvFrame:
    """Uniform-noise frame (worst case for prediction, good for coverage)."""
    return YuvFrame(
        y=rng.integers(0, 256, (height, width), dtype=np.uint8),
        u=rng.integers(0, 256, (height // 2, width // 2), dtype=np.uint8),
        v=rng.integers(0, 256, (height // 2, width // 2), dtype=np.uint8),
    )
