"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.codec.config import CodecConfig
from repro.codec.frames import YuvFrame
from repro.video.generator import SyntheticSequence


@pytest.fixture(autouse=True)
def _schedule_sanitizer(monkeypatch):
    """Sanitize every timeline the suite produces (opt-in via env var).

    With ``REPRO_SANITIZE=1`` (or ``strict``) in the environment, every
    :meth:`VideoCodingManager.run_frame` call anywhere in the suite gets
    its report checked against the schedule invariants (engine races, τ
    windows, conservation, faulted-device idleness) and fails the test on
    the first violation. Process-backend frames get the SAN-F treatment
    instead: the backend journals every shared-memory access (the env
    var switches the journal on) and the frame's journal is checked for
    overlapping concurrent writes and barrier-ordered reads. Unset, this
    fixture is a no-op, so the plain tier-1 run is unaffected.
    """
    mode = os.environ.get("REPRO_SANITIZE", "").lower()
    if mode in ("", "0", "off"):
        yield
        return

    from repro.core.coding_manager import VideoCodingManager
    from repro.exec.backend import ProcessBackend
    from repro.sanitizers import TimelineSanitizer

    original = VideoCodingManager.run_frame

    def sanitized(self, *args, **kwargs):
        report = original(self, *args, **kwargs)
        san = TimelineSanitizer.for_config(
            self.platform, self.codec_cfg, self.fw_cfg
        )
        san.check_report(report).raise_if_dirty()
        return report

    monkeypatch.setattr(VideoCodingManager, "run_frame", sanitized)

    exec_original = ProcessBackend.run_frame

    def exec_sanitized(self, *args, **kwargs):
        report = exec_original(self, *args, **kwargs)
        entries = self.exec_journal.get(report.frame_index, [])
        if entries:
            TimelineSanitizer.check_exec(
                entries, frame=report.frame_index
            ).raise_if_dirty()
        return report

    monkeypatch.setattr(ProcessBackend, "run_frame", exec_sanitized)

    # SAN-G: the env var switches the lifecycle journal on; replay each
    # test's journal against the protocol specs at teardown. The reset
    # keeps one test's objects from leaking obligations into the next.
    from repro.sanitizers.protocols.journal import JOURNAL

    JOURNAL.reset()
    yield
    TimelineSanitizer.check_protocols(JOURNAL.drain()).raise_if_dirty()


@pytest.fixture
def small_cfg() -> CodecConfig:
    """A fast codec configuration for real-compute tests."""
    return CodecConfig(width=128, height=96, search_range=8, num_ref_frames=2)


@pytest.fixture
def tiny_cfg() -> CodecConfig:
    """The smallest sensible configuration (single-MB-row edge cases)."""
    return CodecConfig(width=64, height=48, search_range=4, num_ref_frames=1)


@pytest.fixture
def small_sequence(small_cfg) -> list[YuvFrame]:
    seq = SyntheticSequence(
        width=small_cfg.width, height=small_cfg.height, seed=11, noise_sigma=1.5
    )
    return seq.frames(5)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


def random_frame(rng: np.random.Generator, width: int, height: int) -> YuvFrame:
    """Uniform-noise frame (worst case for prediction, good for coverage)."""
    return YuvFrame(
        y=rng.integers(0, 256, (height, width), dtype=np.uint8),
        u=rng.integers(0, 256, (height // 2, width // 2), dtype=np.uint8),
        v=rng.integers(0, 256, (height // 2, width // 2), dtype=np.uint8),
    )
