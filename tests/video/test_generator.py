"""Synthetic sequence generation."""

import numpy as np
import pytest

from repro.video.generator import MovingObject, SyntheticSequence, moving_objects_sequence


class TestSyntheticSequence:
    def test_deterministic(self):
        a = SyntheticSequence(width=64, height=48, seed=9).frame(3)
        b = SyntheticSequence(width=64, height=48, seed=9).frame(3)
        np.testing.assert_array_equal(a.y, b.y)
        np.testing.assert_array_equal(a.u, b.u)

    def test_different_seeds_differ(self):
        a = SyntheticSequence(width=64, height=48, seed=1).frame(0)
        b = SyntheticSequence(width=64, height=48, seed=2).frame(0)
        assert not np.array_equal(a.y, b.y)

    def test_shapes(self):
        f = SyntheticSequence(width=128, height=96).frame(0)
        assert f.y.shape == (96, 128)
        assert f.u.shape == (48, 64)

    def test_frames_are_temporally_coherent(self):
        """Consecutive frames differ less than distant frames (motion)."""
        seq = SyntheticSequence(width=128, height=96, seed=4, noise_sigma=0)
        f0, f1, f9 = seq.frame(0), seq.frame(1), seq.frame(9)
        d01 = np.abs(f0.y.astype(int) - f1.y.astype(int)).mean()
        d09 = np.abs(f0.y.astype(int) - f9.y.astype(int)).mean()
        assert 0 < d01 < d09

    def test_noise_adds_variation(self):
        quiet = SyntheticSequence(width=64, height=48, seed=3, noise_sigma=0)
        noisy = SyntheticSequence(width=64, height=48, seed=3, noise_sigma=5)
        assert not np.array_equal(quiet.frame(0).y, noisy.frame(0).y)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            SyntheticSequence(width=64, height=48).frame(-1)

    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            SyntheticSequence(width=60, height=48)

    def test_frames_helper(self):
        frames = SyntheticSequence(width=64, height=48).frames(3, start=2)
        assert len(frames) == 3

    def test_convenience_function(self):
        frames = moving_objects_sequence(width=64, height=48, count=2)
        assert len(frames) == 2
        assert frames[0].y.shape == (48, 64)


class TestMovingObject:
    def test_texture_shape_and_determinism(self):
        obj = MovingObject(y0=0, x0=0, height=24, width=32, vy=1, vx=1, seed=5)
        t1, t2 = obj.texture(), obj.texture()
        assert t1.shape == (24, 32)
        np.testing.assert_array_equal(t1, t2)
