"""Raw YUV 4:2:0 file I/O."""

import numpy as np

from repro.video.generator import moving_objects_sequence
from repro.video.yuv import frame_bytes, read_yuv420, write_yuv420


class TestYuvIO:
    def test_frame_bytes(self):
        assert frame_bytes(1920, 1088) == 1920 * 1088 * 3 // 2

    def test_roundtrip(self, tmp_path):
        frames = moving_objects_sequence(width=64, height=48, count=3, seed=2)
        path = tmp_path / "clip.yuv"
        write_yuv420(path, frames)
        assert path.stat().st_size == 3 * frame_bytes(64, 48)
        back = read_yuv420(path, 64, 48)
        assert len(back) == 3
        for a, b in zip(frames, back, strict=True):
            np.testing.assert_array_equal(a.y, b.y)
            np.testing.assert_array_equal(a.u, b.u)
            np.testing.assert_array_equal(a.v, b.v)

    def test_count_limits_read(self, tmp_path):
        frames = moving_objects_sequence(width=64, height=48, count=3, seed=2)
        path = tmp_path / "clip.yuv"
        write_yuv420(path, frames)
        assert len(read_yuv420(path, 64, 48, count=2)) == 2
        assert len(read_yuv420(path, 64, 48, count=99)) == 3

    def test_partial_trailing_frame_ignored(self, tmp_path):
        frames = moving_objects_sequence(width=64, height=48, count=1, seed=2)
        path = tmp_path / "clip.yuv"
        write_yuv420(path, frames)
        with open(path, "ab") as fh:
            fh.write(b"\x00" * 100)  # garbage tail, not a full frame
        assert len(read_yuv420(path, 64, 48)) == 1
