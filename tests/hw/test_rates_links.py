"""Rate models, interconnect, buffer sizes."""

import pytest

from repro.codec.config import CodecConfig
from repro.hw.interconnect import BufferSizes, LinkSpec
from repro.hw.rates import ModuleRates


@pytest.fixture
def rates():
    return ModuleRates(me_mb_us=2.0, int_row_us=50.0, sme_row_us=80.0, rstar_row_us=60.0)


class TestModuleRates:
    def test_me_quadratic_in_sa_side(self, rates):
        small = CodecConfig(search_range=16)
        big = CodecConfig(search_range=32)
        assert rates.me_row_s(big, 1) == pytest.approx(4 * rates.me_row_s(small, 1))

    def test_me_linear_in_refs(self, rates):
        cfg = CodecConfig(search_range=16)
        assert rates.me_row_s(cfg, 4) == pytest.approx(4 * rates.me_row_s(cfg, 1))

    def test_me_calibration_point(self, rates):
        cfg = CodecConfig(width=1920, height=1088, search_range=16)
        # at SA 32, 1 ref: me_mb_us per MB.
        assert rates.me_row_s(cfg, 1) == pytest.approx(2.0e-6 * 120)

    def test_int_sme_scale_with_width_only(self, rates):
        narrow = CodecConfig(width=960, height=1088, search_range=16)
        wide = CodecConfig(width=1920, height=1088, search_range=16)
        assert rates.int_row_s(wide) == pytest.approx(2 * rates.int_row_s(narrow))
        assert rates.sme_row_s(wide) == pytest.approx(2 * rates.sme_row_s(narrow))
        # ...and not with search range.
        big_sa = CodecConfig(width=1920, height=1088, search_range=64)
        assert rates.sme_row_s(big_sa) == pytest.approx(rates.sme_row_s(wide))

    def test_rstar_frame_sums_rows(self, rates):
        cfg = CodecConfig(width=1920, height=1088, search_range=16)
        assert rates.rstar_frame_s(cfg) == pytest.approx(
            68 * rates.rstar_row_s(cfg)
        )

    def test_invalid_refs(self, rates):
        with pytest.raises(ValueError):
            rates.me_row_s(CodecConfig(), 0)

    def test_positive_constants_required(self):
        with pytest.raises(ValueError):
            ModuleRates(me_mb_us=0, int_row_us=1, sme_row_us=1, rstar_row_us=1)


class TestLinkSpec:
    def test_transfer_time_includes_latency(self):
        link = LinkSpec(h2d_gbps=10.0, d2h_gbps=5.0, latency_s=1e-5)
        t = link.transfer_s(1e9, "h2d")
        assert t == pytest.approx(0.1 + 1e-5)

    def test_asymmetric_directions(self):
        link = LinkSpec(h2d_gbps=10.0, d2h_gbps=5.0, latency_s=0)
        assert link.transfer_s(1e9, "d2h") == pytest.approx(
            2 * link.transfer_s(1e9, "h2d")
        )

    def test_zero_bytes_free(self):
        link = LinkSpec(h2d_gbps=10.0, d2h_gbps=5.0)
        assert link.transfer_s(0, "h2d") == 0.0

    def test_direction_validated(self):
        link = LinkSpec(h2d_gbps=10.0, d2h_gbps=5.0)
        with pytest.raises(ValueError):
            link.transfer_s(100, "sideways")

    def test_copy_engines_validated(self):
        with pytest.raises(ValueError):
            LinkSpec(h2d_gbps=1, d2h_gbps=1, copy_engines=3)

    def test_negative_bytes_rejected(self):
        link = LinkSpec(h2d_gbps=1, d2h_gbps=1)
        with pytest.raises(ValueError):
            link.transfer_s(-1, "h2d")


class TestBufferSizes:
    def test_1080p_sizes(self):
        s = BufferSizes(width=1920, height=1088)
        assert s.cf_row == 16 * 1920
        assert s.cf_row_full == 16 * 1920 * 3 // 2
        assert s.rf_frame == 1920 * 1088 * 3 // 2
        assert s.sf_row == 256 * 1920           # 16 subpel samples / pixel
        assert s.mv_row == 120 * 41 * 6

    def test_sf_is_16_reference_frames(self):
        """Paper §II: the SF structure is as large as 16 RFs (luma)."""
        s = BufferSizes(width=1920, height=1088)
        total_sf = s.sf_row * 68
        assert total_sf == 16 * (1920 * 1088)
