"""Device calibration from measured timings."""

import pytest

from repro.codec.config import CodecConfig
from repro.hw.calibration import (
    ModuleTiming,
    calibrate_device,
    fit_rates,
    measure_link,
    predict_single_device_fps,
)
from repro.hw.presets import GPU_K


def timings_from_spec(spec, sa_side=32, n_refs=1, mb_cols=120, rows=68):
    """Synthesize perfect measurements from a known spec (identity check)."""
    cfg = CodecConfig(
        width=mb_cols * 16, height=rows * 16,
        search_range=sa_side // 2, num_ref_frames=n_refs,
    )
    r = spec.rates
    return [
        ModuleTiming("me", rows, r.me_row_s(cfg, n_refs) * rows, mb_cols,
                     sa_side, n_refs),
        ModuleTiming("int", rows, r.int_row_s(cfg) * rows, mb_cols),
        ModuleTiming("sme", rows, r.sme_row_s(cfg) * rows, mb_cols),
        ModuleTiming("rstar", rows, r.rstar_frame_s(cfg), mb_cols),
    ]


class TestFitRates:
    def test_roundtrip_identity(self):
        fitted = fit_rates(timings_from_spec(GPU_K))
        assert fitted.me_mb_us == pytest.approx(GPU_K.rates.me_mb_us, rel=1e-9)
        assert fitted.int_row_us == pytest.approx(GPU_K.rates.int_row_us, rel=1e-9)
        assert fitted.sme_row_us == pytest.approx(GPU_K.rates.sme_row_us, rel=1e-9)
        assert fitted.rstar_row_us == pytest.approx(GPU_K.rates.rstar_row_us, rel=1e-9)

    def test_me_normalization_across_settings(self):
        """Measurements at different SA/refs must agree after scaling."""
        a = timings_from_spec(GPU_K, sa_side=32, n_refs=1)
        b = timings_from_spec(GPU_K, sa_side=64, n_refs=4)
        fitted = fit_rates(a + b)
        assert fitted.me_mb_us == pytest.approx(GPU_K.rates.me_mb_us, rel=1e-9)

    def test_missing_module_rejected(self):
        t = timings_from_spec(GPU_K)[:2]
        with pytest.raises(ValueError, match="no measurements"):
            fit_rates(t)

    def test_timing_validation(self):
        with pytest.raises(ValueError):
            ModuleTiming("dct", 1, 1.0, 120)
        with pytest.raises(ValueError):
            ModuleTiming("me", 0, 1.0, 120)


class TestMeasureLink:
    def test_two_point_fit(self):
        # latency 10us, 10 GB/s.
        lat, bw = 10e-6, 10e9
        samples = [(1e6, lat + 1e6 / bw), (64e6, lat + 64e6 / bw)]
        link = measure_link(samples, samples, copy_engines=2)
        assert link.h2d_gbps == pytest.approx(10.0, rel=1e-6)
        assert link.latency_s == pytest.approx(10e-6, rel=1e-3)
        assert link.copy_engines == 2

    def test_single_sample_fallback(self):
        link = measure_link([(1e9, 0.2)], [(1e9, 0.25)])
        assert link.h2d_gbps == pytest.approx(5.0)
        assert link.d2h_gbps == pytest.approx(4.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            measure_link([], [(1, 1)])


class TestCalibrateDevice:
    def test_full_pipeline(self):
        link = measure_link([(1e9, 0.1)], [(1e9, 0.12)], copy_engines=2)
        spec = calibrate_device("myGPU", "gpu", timings_from_spec(GPU_K), link)
        assert spec.name == "myGPU"
        assert spec.is_accelerator
        cfg = CodecConfig(width=1920, height=1088, search_range=16)
        fps = predict_single_device_fps(spec, cfg)
        assert 40 < fps < 70  # GPU_K-class device

    def test_prediction_matches_simulation(self):
        """The analytic estimate must track the DES single-device result."""
        from repro.baselines import run_single_device

        cfg = CodecConfig(width=1920, height=1088, search_range=16)
        analytic = predict_single_device_fps(GPU_K, cfg)
        simulated = run_single_device("GPU_K", cfg, 5).steady_state_fps()
        assert analytic == pytest.approx(simulated, rel=0.05)
