"""DES fuzzing: randomized DAGs must always produce valid schedules."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.des import Op, Resource, Simulator, validate_schedule


@st.composite
def random_dag(draw):
    """A random op DAG: ops reference only earlier ops (acyclic)."""
    n_res = draw(st.integers(min_value=1, max_value=4))
    n_ops = draw(st.integers(min_value=1, max_value=20))
    resources = [Resource(f"r{i}") for i in range(n_res)]
    ops: list[Op] = []
    for i in range(n_ops):
        res = resources[draw(st.integers(min_value=0, max_value=n_res - 1))]
        dur = draw(st.floats(min_value=0.0, max_value=5.0,
                             allow_nan=False, allow_infinity=False))
        n_deps = draw(st.integers(min_value=0, max_value=min(3, len(ops))))
        deps = [
            ops[draw(st.integers(min_value=0, max_value=len(ops) - 1))]
            for _ in range(n_deps)
        ] if ops else []
        ops.append(Op(f"op{i}", res, dur, deps=list(dict.fromkeys(deps))))
    return resources, ops


class TestDesFuzz:
    @given(random_dag())
    @settings(max_examples=120, deadline=None)
    def test_schedule_invariants(self, dag):
        resources, ops = dag
        records = Simulator(resources).run()

        # 1. no overlap on any resource.
        validate_schedule(records)

        eps = 1e-9
        for op in ops:
            assert op.start is not None and op.end is not None
            # 2. duration respected.
            assert abs((op.end - op.start) - op.duration) <= eps
            # 3. explicit dependencies respected.
            for d in op.deps:
                assert op.start >= d.end - eps
        # 4. issue order respected per resource.
        for r in resources:
            for a, b in zip(r.ops, r.ops[1:], strict=False):
                assert b.start >= a.end - eps
        # 5. makespan bounds: at least the busiest resource, at most the sum.
        total = sum(op.duration for op in ops)
        busiest = max(
            (sum(op.duration for op in r.ops) for r in resources), default=0.0
        )
        sim_makespan = max(op.end for op in ops)
        assert busiest - eps <= sim_makespan <= total + eps

    @given(random_dag())
    @settings(max_examples=40, deadline=None)
    def test_rerun_after_reset_is_identical(self, dag):
        resources, ops = dag
        sim = Simulator(resources)
        first = [(r.label, r.start, r.end) for r in sim.run()]
        # Re-running the same issued ops must give the same schedule.
        for op in ops:
            op.start = op.end = None
        second = [(r.label, r.start, r.end) for r in sim.run()]
        assert first == second

    @given(random_dag())
    @settings(max_examples=40, deadline=None)
    def test_greedy_work_conservation(self, dag):
        """An op starts exactly when its last blocker finishes (no idling)."""
        resources, ops = dag
        Simulator(resources).run()
        eps = 1e-9
        for r in resources:
            for i, op in enumerate(r.ops):
                blockers = [d.end for d in op.deps]
                if i > 0:
                    blockers.append(r.ops[i - 1].end)
                expected = max(blockers, default=0.0)
                assert abs(op.start - expected) <= eps
