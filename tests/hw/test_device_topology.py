"""Device model, copy-engine aliasing and platform topology."""

import pytest

from repro.hw.device import Device, DeviceSpec
from repro.hw.interconnect import LinkSpec
from repro.hw.presets import CPU_N, GPU_F, GPU_K, get_device_spec, get_platform, list_platforms
from repro.hw.rates import ModuleRates
from repro.hw.topology import Platform

RATES = ModuleRates(me_mb_us=1, int_row_us=1, sme_row_us=1, rstar_row_us=1)


class TestDeviceSpec:
    def test_gpu_requires_link(self):
        with pytest.raises(ValueError, match="requires a link"):
            DeviceSpec(name="g", kind="gpu", rates=RATES)

    def test_cpu_must_not_have_link(self):
        with pytest.raises(ValueError, match="must not"):
            DeviceSpec(
                name="c", kind="cpu", rates=RATES,
                link=LinkSpec(h2d_gbps=1, d2h_gbps=1),
            )

    def test_kind_validated(self):
        with pytest.raises(ValueError):
            DeviceSpec(name="x", kind="tpu", rates=RATES)


class TestCopyEngines:
    def test_single_engine_aliases_directions(self):
        spec = DeviceSpec(
            name="g", kind="gpu", rates=RATES,
            link=LinkSpec(h2d_gbps=1, d2h_gbps=1, copy_engines=1),
        )
        dev = Device(spec=spec)
        assert dev.copy_h2d is dev.copy_d2h
        assert len(dev.resources()) == 2  # compute + shared copy

    def test_dual_engines_distinct(self):
        spec = DeviceSpec(
            name="g", kind="gpu", rates=RATES,
            link=LinkSpec(h2d_gbps=1, d2h_gbps=1, copy_engines=2),
        )
        dev = Device(spec=spec)
        assert dev.copy_h2d is not dev.copy_d2h
        assert len(dev.resources()) == 3

    def test_cpu_has_no_copy_engines(self):
        dev = Device(spec=DeviceSpec(name="c", kind="cpu", rates=RATES))
        assert dev.copy_h2d is None
        assert dev.transfer_s(10**9, "h2d") == 0.0
        assert len(dev.resources()) == 1


class TestPlatform:
    def test_presets_exist(self):
        assert set(list_platforms()) == {
            "CPU_H", "CPU_N", "GPU_F", "GPU_K", "SysHK", "SysNF", "SysNFF"
        }

    def test_unknown_platform(self):
        with pytest.raises(KeyError):
            get_platform("SysXYZ")

    def test_unknown_device(self):
        with pytest.raises(KeyError):
            get_device_spec("GPU_Z")

    def test_sysnff_layout(self):
        p = get_platform("SysNFF")
        assert [d.name for d in p.devices] == ["GPU_F", "GPU_F2", "CPU_N"]
        assert p.n_workers == 2
        assert p.cpu is not None and p.cpu.name == "CPU_N"

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Platform(name="bad", specs=[CPU_N, CPU_N])

    def test_two_cpus_rejected(self):
        from repro.hw.presets import CPU_H

        with pytest.raises(ValueError, match="one aggregate CPU"):
            Platform(name="bad", specs=[CPU_N, CPU_H])

    def test_device_lookup(self):
        p = get_platform("SysHK")
        assert p.device("GPU_K").is_accelerator
        with pytest.raises(KeyError):
            p.device("GPU_F")

    def test_fresh_creates_new_resources(self):
        p = get_platform("SysHK")
        q = p.fresh()
        assert p.devices[0].compute is not q.devices[0].compute


class TestMultiGpuBuilder:
    def test_counts_and_names(self):
        from repro.hw.presets import multi_gpu_platform

        p = multi_gpu_platform(3)
        assert p.n_workers == 3
        assert [d.name for d in p.devices] == [
            "GPU_F", "GPU_F2", "GPU_F3", "CPU_N"
        ]

    def test_without_cpu(self):
        from repro.hw.presets import multi_gpu_platform

        p = multi_gpu_platform(2, cpu=None)
        assert p.cpu is None
        assert p.n_workers == 2

    def test_matches_named_presets(self):
        from repro.hw.presets import multi_gpu_platform

        one = multi_gpu_platform(1)
        assert [s.name for s in one.specs] == [
            s.name for s in get_platform("SysNF").specs
        ]
        two = multi_gpu_platform(2)
        assert [s.name for s in two.specs] == [
            s.name for s in get_platform("SysNFF").specs
        ]

    def test_zero_gpus_rejected(self):
        from repro.hw.presets import multi_gpu_platform

        with pytest.raises(ValueError):
            multi_gpu_platform(0)


class TestCalibration:
    """Paper §IV ratio anchors, evaluated analytically from the rate models."""

    CFG = None

    @classmethod
    def setup_class(cls):
        from repro.codec.config import CodecConfig

        cls.CFG = CodecConfig(width=1920, height=1088, search_range=16)

    def _frame_time(self, spec, refs=1):
        cfg = self.CFG
        r = spec.rates
        return (
            r.me_row_s(cfg, refs) * 68
            + r.int_row_s(cfg) * 68
            + r.sme_row_s(cfg) * 68
            + r.rstar_frame_s(cfg)
        )

    def test_haswell_vs_nehalem(self):
        from repro.hw.presets import CPU_H

        ratio = self._frame_time(CPU_N) / self._frame_time(CPU_H)
        assert 1.5 <= ratio <= 1.9  # paper: "about 1.7 times faster"

    def test_kepler_vs_fermi(self):
        ratio = self._frame_time(GPU_F) / self._frame_time(GPU_K)
        assert 1.7 <= ratio <= 2.3  # paper: "almost 2 times"

    def test_gpus_realtime_at_32sa_1rf(self):
        # ≥ 25 fps for both GPUs at 32×32 SA and 1 RF (paper §IV).
        assert 1.0 / self._frame_time(GPU_F) >= 25.0
        assert 1.0 / self._frame_time(GPU_K) >= 25.0

    def test_cpus_not_realtime(self):
        from repro.hw.presets import CPU_H

        assert 1.0 / self._frame_time(CPU_N) < 25.0
        assert 1.0 / self._frame_time(CPU_H) < 25.0

    def test_fermi_single_copy_kepler_dual(self):
        assert GPU_F.link is not None and GPU_F.link.copy_engines == 1
        assert GPU_K.link is not None and GPU_K.link.copy_engines == 2
