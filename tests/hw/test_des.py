"""Discrete-event simulation kernel."""

import pytest

from repro.hw.des import Op, Resource, Simulator, validate_schedule


class TestScheduling:
    def test_serial_on_one_resource(self):
        r = Resource("q")
        a = Op("a", r, 1.0)
        b = Op("b", r, 2.0)
        sim = Simulator([r])
        sim.run()
        assert (a.start, a.end) == (0.0, 1.0)
        assert (b.start, b.end) == (1.0, 3.0)

    def test_parallel_on_two_resources(self):
        r1, r2 = Resource("r1"), Resource("r2")
        a = Op("a", r1, 5.0)
        b = Op("b", r2, 3.0)
        sim = Simulator([r1, r2])
        sim.run()
        assert a.start == 0.0 and b.start == 0.0
        assert sim.makespan() == 5.0

    def test_dependency_delays_start(self):
        r1, r2 = Resource("r1"), Resource("r2")
        a = Op("a", r1, 4.0)
        b = Op("b", r2, 1.0, deps=[a])
        Simulator([r1, r2]).run()
        assert b.start == 4.0

    def test_cross_resource_chain(self):
        """compute -> transfer -> compute alternation (the Fig. 4 pattern)."""
        comp, copy = Resource("comp"), Resource("copy")
        h2d = Op("h2d", copy, 1.0)
        kern = Op("kern", comp, 2.0, deps=[h2d])
        d2h = Op("d2h", copy, 1.0, deps=[kern])
        Simulator([comp, copy]).run()
        assert kern.start == 1.0
        assert d2h.start == 3.0

    def test_blocked_queue_head_blocks_queue(self):
        """In-order queues: an op waiting on a dep stalls later queue ops."""
        comp, copy = Resource("comp"), Resource("copy")
        kern = Op("kern", comp, 5.0)
        out = Op("out", copy, 1.0, deps=[kern])   # issued first on copy
        other = Op("other", copy, 1.0)            # ready but behind `out`
        Simulator([comp, copy]).run()
        assert out.start == 5.0
        assert other.start == 6.0

    def test_zero_duration_barrier(self):
        r = Resource("r")
        host = Resource("host")
        a = Op("a", r, 2.0)
        tau = Op("tau", host, 0.0, deps=[a])
        b = Op("b", r, 1.0, deps=[tau])
        Simulator([r, host]).run()
        assert tau.end == 2.0
        assert b.start == 2.0


class TestValidation:
    def test_negative_duration_rejected(self):
        r = Resource("r")
        with pytest.raises(ValueError):
            Op("bad", r, -1.0)

    def test_cycle_detected(self):
        r1, r2 = Resource("r1"), Resource("r2")
        a = Op("a", r1, 1.0)
        b = Op("b", r2, 1.0, deps=[a])
        a.deps.append(b)
        with pytest.raises(RuntimeError, match="cycle"):
            Simulator([r1, r2]).run()

    def test_foreign_dep_rejected(self):
        r1, r2 = Resource("r1"), Resource("r2")
        a = Op("a", r1, 1.0)
        _b = Op("b", r2, 1.0, deps=[a])
        with pytest.raises(RuntimeError, match="not"):
            Simulator([r2]).run()  # r1 not part of this simulator

    def test_duplicate_resource_names(self):
        with pytest.raises(ValueError):
            Simulator([Resource("x"), Resource("x")])

    def test_validate_schedule_detects_overlap(self):
        from repro.hw.des import OpRecord

        recs = [
            OpRecord("a", "r", "compute", 0.0, 2.0),
            OpRecord("b", "r", "compute", 1.0, 3.0),
        ]
        with pytest.raises(AssertionError, match="overlap"):
            validate_schedule(recs)

    def test_run_schedule_always_valid(self):
        r1, r2 = Resource("r1"), Resource("r2")
        ops = [Op(f"a{i}", r1, 0.5) for i in range(5)]
        Op("x", r2, 1.0, deps=[ops[2]])
        records = Simulator([r1, r2]).run()
        validate_schedule(records)  # must not raise


class TestThunks:
    def test_thunks_run_in_dependency_order(self):
        order = []
        r1, r2 = Resource("r1"), Resource("r2")
        a = Op("a", r1, 2.0, thunk=lambda op: order.append("a"))
        Op("b", r2, 1.0, deps=[a], thunk=lambda op: order.append("b"))
        Simulator([r1, r2]).run()
        assert order == ["a", "b"]

    def test_thunk_result_stored(self):
        r = Resource("r")
        a = Op("a", r, 1.0, thunk=lambda op: 42)
        Simulator([r]).run()
        assert a.result == 42

    def test_thunks_skipped_in_model_mode(self):
        r = Resource("r")
        a = Op("a", r, 1.0, thunk=lambda op: 42)
        Simulator([r]).run(execute_thunks=False)
        assert a.result is None
        assert a.end == 1.0


class TestFailOk:
    def test_serial_exception_propagates_by_default(self):
        r = Resource("r")

        def boom(op):
            raise RuntimeError("device lost")

        Op("a", r, 1.0, thunk=boom)
        with pytest.raises(RuntimeError, match="device lost"):
            Simulator([r]).run()

    def test_serial_fail_ok_captures_error(self):
        r = Resource("r")

        def boom(op):
            raise RuntimeError("device lost")

        a = Op("a", r, 1.0, thunk=boom, fail_ok=True)
        b = Op("b", r, 2.0, deps=[a], thunk=lambda op: "fine")
        Simulator([r]).run()
        assert isinstance(a.error, RuntimeError)
        assert a.result is None
        # downstream ops still execute: the fault is an event, not an abort
        assert b.result == "fine"
        assert (b.start, b.end) == (1.0, 3.0)

    def test_parallel_fail_ok_captures_error(self):
        r1, r2 = Resource("r1"), Resource("r2")

        def boom(op):
            raise RuntimeError("device lost")

        a = Op("a", r1, 1.0, thunk=boom, fail_ok=True)
        b = Op("b", r2, 1.0, thunk=lambda op: "fine")
        Simulator([r1, r2]).run(parallel_workers=2)
        assert isinstance(a.error, RuntimeError)
        assert b.result == "fine"

    def test_parallel_exception_propagates_by_default(self):
        r = Resource("r")

        def boom(op):
            raise RuntimeError("device lost")

        Op("a", r, 1.0, thunk=boom)
        Op("b", r, 1.0, thunk=lambda op: None)
        with pytest.raises(RuntimeError, match="device lost"):
            Simulator([r]).run(parallel_workers=2)

    def test_error_cleared_on_success(self):
        r = Resource("r")
        a = Op("a", r, 1.0, thunk=lambda op: 7, fail_ok=True)
        Simulator([r]).run()
        assert a.error is None and a.result == 7


class TestReset:
    def test_reset_clears_ops(self):
        r = Resource("r")
        Op("a", r, 1.0)
        sim = Simulator([r])
        sim.run()
        sim.reset()
        assert sim.makespan() == 0.0
        Op("b", r, 2.0)
        sim.run()
        assert sim.makespan() == 2.0

    def test_determinism(self):
        def build():
            r1, r2 = Resource("r1"), Resource("r2")
            a = Op("a", r1, 1.5)
            b = Op("b", r2, 0.5, deps=[a])
            Op("c", r1, 1.0, deps=[b])
            recs = Simulator([r1, r2]).run()
            return [(x.label, x.start, x.end) for x in recs]

        assert build() == build()


class TestParallelAbortSemantics:
    """Regression suite for the thread-pool thunk runner.

    The pool must preserve the serial Kahn loop's error semantics: a
    fatal thunk aborts the DAG (nothing new dispatched, in-flight work
    drains), the raised error is that of the *earliest issued* failed
    op regardless of thread completion order, and fail_ok faults stay
    op-level events whose successors still run. The original runner
    kept submitting successors of ops that finished after a fatal
    failure and raised whichever error a thread happened to report
    first.
    """

    def test_fatal_error_is_earliest_issued(self):
        # `a` is issued first but finishes last; the raised error must
        # still be a's, not the fast-failing b's.
        import time

        r1, r2 = Resource("r1"), Resource("r2")

        def slow_boom(op):
            time.sleep(0.1)
            raise RuntimeError("first-issued failure")

        def fast_boom(op):
            raise RuntimeError("later-issued failure")

        Op("a", r1, 1.0, thunk=slow_boom)
        Op("b", r2, 1.0, thunk=fast_boom)
        with pytest.raises(RuntimeError, match="first-issued failure"):
            Simulator([r1, r2]).run(parallel_workers=2)

    def test_no_dispatch_after_fatal(self):
        # `a` fails immediately; `slow` is already in flight and drains,
        # but its successor `c` must never be dispatched — it would
        # mutate shared encoder state mid-abort.
        import time

        r1, r2 = Resource("r1"), Resource("r2")

        def boom(op):
            raise RuntimeError("abort the DAG")

        def slow_ok(op):
            time.sleep(0.25)
            return "drained"

        Op("a", r1, 1.0, thunk=boom)
        slow = Op("slow", r2, 1.0, thunk=slow_ok)
        c = Op("c", r2, 1.0, deps=[slow], thunk=lambda op: "ran")
        with pytest.raises(RuntimeError, match="abort the DAG"):
            Simulator([r1, r2]).run(parallel_workers=2)
        assert slow.result == "drained"  # in-flight work drains
        assert c.result is None          # nothing new after the fatal

    def test_fail_ok_successors_still_run(self):
        r = Resource("r")

        def boom(op):
            raise RuntimeError("device lost")

        a = Op("a", r, 1.0, thunk=boom, fail_ok=True)
        b = Op("b", r, 1.0, deps=[a], thunk=lambda op: "recovered")
        Simulator([r]).run(parallel_workers=2)
        assert isinstance(a.error, RuntimeError)
        assert b.result == "recovered"

    def test_parallel_results_and_records_match_serial(self):
        # Diamond DAG with value-passing thunks: the pool must produce
        # the identical results and the identical schedule records.
        def build_and_run(workers, fast):
            r1, r2 = Resource("r1"), Resource("r2")
            a = Op("a", r1, 1.0, thunk=lambda op: 10)
            b = Op("b", r1, 2.0, deps=[a], thunk=lambda op: a.result + 1)
            c = Op("c", r2, 0.5, deps=[a], thunk=lambda op: a.result + 2)
            d = Op(
                "d", r2, 1.0, deps=[b, c],
                thunk=lambda op: b.result + c.result,
            )
            recs = Simulator([r1, r2]).run(
                parallel_workers=workers, fast=fast
            )
            return [x.result for x in (a, b, c, d)], recs

        ref_results, ref_recs = build_and_run(0, fast=True)
        assert ref_results == [10, 11, 12, 23]
        for workers in (2, 4):
            for fast in (True, False):
                results, recs = build_and_run(workers, fast=fast)
                assert results == ref_results
                assert recs == ref_recs

    def test_parallel_stall_is_reported(self):
        # A dependency cycle is caught by the scheduling passes before
        # the pool runs; the pool's own stall check is exercised through
        # the public API only by this never-ready construction being
        # impossible — so drive the runner directly.
        r = Resource("r")
        a = Op("a", r, 1.0, thunk=lambda op: 1)
        b = Op("b", r, 1.0, thunk=lambda op: 2)
        sim = Simulator([r])
        preds = {a: [], b: [a]}
        succs = {a: [], b: []}  # broken: a never notifies b
        with pytest.raises(RuntimeError, match="stalled"):
            sim._run_thunks_parallel([a, b], preds, succs, workers=2)
