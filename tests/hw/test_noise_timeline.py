"""Noise injection and timeline utilities."""

import pytest

from repro.hw.des import OpRecord
from repro.hw.noise import (
    FaultEvent,
    FaultSchedule,
    GaussianJitter,
    NoiseModel,
    PerturbationEvent,
    PerturbationSchedule,
)
from repro.hw.timeline import EncodingTrace, FrameTimeline


class TestPerturbationSchedule:
    def test_factor_applies_during_window(self):
        sched = PerturbationSchedule(
            [PerturbationEvent(frame=10, device="CPU", factor=2.0, duration=2)]
        )
        assert sched.factor(9, "CPU") == 1.0
        assert sched.factor(10, "CPU") == 2.0
        assert sched.factor(11, "CPU") == 2.0
        assert sched.factor(12, "CPU") == 1.0

    def test_device_scoped(self):
        sched = PerturbationSchedule(
            [PerturbationEvent(frame=5, device="GPU", factor=3.0)]
        )
        assert sched.factor(5, "CPU") == 1.0

    def test_events_compose(self):
        sched = PerturbationSchedule(
            [
                PerturbationEvent(frame=5, device="D", factor=2.0),
                PerturbationEvent(frame=5, device="D", factor=1.5),
            ]
        )
        assert sched.factor(5, "D") == 3.0

    def test_paper_fig7b_events(self):
        s1 = PerturbationSchedule.paper_fig7b("CPU_H", 1)
        assert s1.factor(76, "CPU_H") == 2.0
        assert s1.factor(81, "CPU_H") == 2.0
        assert s1.factor(31, "CPU_H") == 1.0
        s2 = PerturbationSchedule.paper_fig7b("CPU_H", 2)
        assert {e.frame for e in s2.events} == {31, 71, 92}
        s5 = PerturbationSchedule.paper_fig7b("CPU_H", 5)
        assert s5.events == []

    def test_validation(self):
        with pytest.raises(ValueError):
            PerturbationEvent(frame=1, device="D", factor=0.0)
        with pytest.raises(ValueError):
            PerturbationEvent(frame=1, device="D", factor=1.0, duration=0)

    def test_speedup_factor_allowed(self):
        # factors in (0, 1) model a device speeding up (e.g. background
        # load ending); only non-positive factors are invalid.
        sched = PerturbationSchedule(
            [PerturbationEvent(frame=3, device="D", factor=0.5)]
        )
        assert sched.factor(3, "D") == 0.5
        with pytest.raises(ValueError):
            PerturbationEvent(frame=1, device="D", factor=-0.5)

    def test_composition_is_order_independent(self):
        events = [
            PerturbationEvent(frame=4, device="D", factor=2.0, duration=3),
            PerturbationEvent(frame=5, device="D", factor=0.5, duration=3),
            PerturbationEvent(frame=5, device="D", factor=3.0),
        ]
        fwd = PerturbationSchedule(events)
        rev = PerturbationSchedule(list(reversed(events)))
        for frame in range(3, 9):
            assert fwd.factor(frame, "D") == rev.factor(frame, "D")
        assert fwd.factor(5, "D") == pytest.approx(3.0)  # 2.0 * 0.5 * 3.0


class TestFaultSchedule:
    def test_dropout_is_permanent(self):
        sched = FaultSchedule(
            [FaultEvent(frame=5, device="G", kind="dropout")]
        )
        assert sched.down(4, "G") is None
        for frame in (5, 6, 100):
            ev = sched.down(frame, "G")
            assert ev is not None and ev.kind == "dropout"
        assert sched.down(5, "other") is None

    def test_hang_window_closes(self):
        sched = FaultSchedule(
            [FaultEvent(frame=5, device="G", kind="hang", duration=2)]
        )
        assert sched.down(4, "G") is None
        assert sched.down(5, "G") is not None
        assert sched.down(6, "G") is not None
        assert sched.down(7, "G") is None

    def test_degrade_scales_compute_only(self):
        sched = FaultSchedule(
            [FaultEvent(frame=3, device="G", kind="degrade", factor=2.5)]
        )
        assert sched.compute_factor(2, "G") == 1.0
        assert sched.compute_factor(3, "G") == 2.5
        assert sched.compute_factor(50, "G") == 2.5  # permanent
        assert sched.copy_factor(3, "G") == 1.0
        assert sched.down(3, "G") is None  # degraded, not down

    def test_copy_fail_scales_transfers_only(self):
        sched = FaultSchedule(
            [FaultEvent(frame=3, device="G", kind="copy_fail", factor=4.0)]
        )
        assert sched.copy_factor(3, "G") == 4.0
        assert sched.compute_factor(3, "G") == 1.0

    def test_degradations_compose(self):
        sched = FaultSchedule([
            FaultEvent(frame=3, device="G", kind="degrade", factor=2.0),
            FaultEvent(frame=5, device="G", kind="degrade", factor=3.0),
        ])
        assert sched.compute_factor(4, "G") == 2.0
        assert sched.compute_factor(5, "G") == 6.0

    def test_devices_listed(self):
        sched = FaultSchedule([
            FaultEvent(frame=3, device="A", kind="dropout"),
            FaultEvent(frame=4, device="B", kind="degrade", factor=2.0),
        ])
        assert sched.devices() == {"A", "B"}
        assert not sched.empty
        assert FaultSchedule().empty

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(frame=0, device="G", kind="dropout")
        with pytest.raises(ValueError):
            FaultEvent(frame=1, device="G", kind="explode")
        with pytest.raises(ValueError):
            FaultEvent(frame=1, device="G", kind="degrade", factor=0.5)
        with pytest.raises(ValueError):
            FaultEvent(frame=1, device="G", kind="hang")  # needs duration
        with pytest.raises(ValueError):
            FaultEvent(frame=1, device="G", kind="dropout", duration=3)


class TestJitter:
    def test_zero_sigma_identity(self):
        j = GaussianJitter(sigma=0.0)
        assert j.sample() == 1.0

    def test_seed_reproducible(self):
        a = GaussianJitter(sigma=0.1, seed=5)
        b = GaussianJitter(sigma=0.1, seed=5)
        assert [a.sample() for _ in range(5)] == [b.sample() for _ in range(5)]

    def test_never_nonpositive(self):
        j = GaussianJitter(sigma=2.0, seed=1)
        assert all(j.sample() > 0 for _ in range(200))

    def test_noise_model_combines(self):
        nm = NoiseModel(
            schedule=PerturbationSchedule(
                [PerturbationEvent(frame=3, device="D", factor=2.0)]
            ),
            jitter=GaussianJitter(sigma=0.0),
        )
        assert nm.scale(3, "D") == 2.0
        assert nm.scale(2, "D") == 1.0


class TestTimeline:
    def _timeline(self):
        recs = [
            OpRecord("ME", "gpu.compute", "compute", 0.0, 2.0),
            OpRecord("CF", "gpu.copy", "h2d", 0.0, 0.5),
            OpRecord("MV", "gpu.copy", "d2h", 2.0, 2.2),
        ]
        return FrameTimeline(frame_index=1, records=recs, tau1=2.2, tau2=3.0, tau_tot=4.0)

    def test_busy_time(self):
        tl = self._timeline()
        assert tl.busy_time("gpu.compute") == pytest.approx(2.0)
        assert tl.busy_time("gpu.copy") == pytest.approx(0.7)

    def test_utilization(self):
        tl = self._timeline()
        assert tl.utilization("gpu.compute") == pytest.approx(0.5)

    def test_by_category(self):
        cats = self._timeline().by_category()
        assert cats == pytest.approx({"compute": 2.0, "h2d": 0.5, "d2h": 0.2})

    def test_gantt_text_renders(self):
        text = self._timeline().gantt_text(width=40)
        assert "gpu.compute" in text and "#" in text and ">" in text

    def test_empty_timeline_text(self):
        tl = FrameTimeline(frame_index=0, records=[])
        assert "empty" in tl.gantt_text()


class TestTrace:
    def test_fps_accounting(self):
        trace = EncodingTrace(platform="X")
        for i, t in enumerate([0.1, 0.05, 0.05, 0.05]):
            trace.add(FrameTimeline(frame_index=i, records=[], tau_tot=t))
        assert trace.mean_fps() == pytest.approx(4 / 0.25)
        assert trace.steady_state_fps(warmup=1) == pytest.approx(20.0)

    def test_empty_trace(self):
        assert EncodingTrace(platform="X").mean_fps() == 0.0
