"""Chrome trace-event export."""

import json

import pytest

from repro.codec.config import CodecConfig
from repro.core.config import FrameworkConfig
from repro.core.framework import FevesFramework
from repro.hw.presets import get_platform
from repro.hw.trace_export import (
    StreamTrace,
    export_chrome_trace,
    export_stream_traces,
    resource_tids,
    timeline_to_events,
)

CFG = CodecConfig(width=1920, height=1088, search_range=16, num_ref_frames=1)


@pytest.fixture(scope="module")
def timelines():
    fw = FevesFramework(get_platform("SysHK"), CFG, FrameworkConfig())
    fw.run_model(4)
    return [r.timeline for r in fw.reports]


class TestTraceExport:
    def test_events_structure(self, timelines):
        events = timeline_to_events(timelines[0])
        durations = [e for e in events if e["ph"] == "X"]
        metas = [e for e in events if e["ph"] == "M"]
        assert durations and metas
        for e in durations:
            assert e["ts"] >= 0 and e["dur"] > 0
            assert e["cat"] in ("kernel", "transfer_in", "transfer_out")

    def test_resources_become_threads(self, timelines):
        events = timeline_to_events(timelines[0])
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert "GPU_K.compute" in names
        assert "CPU_H.compute" in names

    def test_file_export_valid_json(self, timelines, tmp_path):
        path = tmp_path / "trace.json"
        n = export_chrome_trace(timelines, path)
        assert n > 0
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        xs = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == n

    def test_frames_laid_out_sequentially(self, timelines, tmp_path):
        path = tmp_path / "trace.json"
        export_chrome_trace(timelines, path)
        payload = json.loads(path.read_text())
        by_frame: dict[int, list[float]] = {}
        for e in payload["traceEvents"]:
            if e["ph"] == "X":
                by_frame.setdefault(e["args"]["frame"], []).append(e["ts"])
        frames = sorted(by_frame)
        for a, b in zip(frames, frames[1:], strict=False):
            assert min(by_frame[b]) >= max(by_frame[a]) - 1e-6

    def test_zero_duration_barriers_skipped(self, timelines, tmp_path):
        events = timeline_to_events(timelines[0])
        assert not any(
            e["ph"] == "X" and e["name"] in ("tau1", "tau2") for e in events
        )


class TestStreamNamespacing:
    def test_resource_tids_stable_over_union(self, faulted_fw):
        # the post-fault frames miss GPU_F2's engines; the union mapping
        # must still give every resource one stable tid across all frames
        tls = [r.timeline for r in faulted_fw.reports]
        tids = resource_tids(tls)
        assert any(res.startswith("GPU_F2") for res in tids)
        assert sorted(tids.values()) == list(range(1, len(tids) + 1))
        per_frame = [resource_tids([tl]) for tl in tls]
        # without the union, the per-frame mappings disagree after eviction
        assert any(m != tids for m in per_frame)

    def test_custom_pid_propagates(self, timelines):
        events = timeline_to_events(timelines[0], pid=7)
        assert {e["pid"] for e in events} == {7}

    def test_stream_arg_tagged(self, timelines):
        tids = resource_tids(timelines)
        events = timeline_to_events(timelines[0], tids=tids, stream="cam0")
        assert events  # no metadata when tids provided
        assert all(e["ph"] == "X" for e in events)
        assert all(e["args"]["stream"] == "cam0" for e in events)

    def test_export_stream_traces_one_pid_per_stream(self, timelines, tmp_path):
        path = tmp_path / "multi.json"
        streams = [
            StreamTrace(
                pid=i + 1,
                name=f"stream-{i}",
                frames=[(tl, 0.05 * i + 0.1 * j) for j, tl in enumerate(timelines)],
            )
            for i in range(3)
        ]
        n = export_stream_traces(streams, path)
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == n
        assert {e["pid"] for e in xs} == {1, 2, 3}
        names = {
            e["pid"]: e["args"]["name"]
            for e in events
            if e.get("name") == "process_name"
        }
        assert names == {1: "stream-0", 2: "stream-1", 3: "stream-2"}
        sorts = [e for e in events if e.get("name") == "process_sort_index"]
        assert {e["args"]["sort_index"] for e in sorts} == {1, 2, 3}
        # thread metadata is emitted per pid
        thread_meta = [e for e in events if e.get("name") == "thread_name"]
        assert {e["pid"] for e in thread_meta} == {1, 2, 3}

    def test_stream_frames_land_at_absolute_times(self, timelines, tmp_path):
        path = tmp_path / "multi.json"
        start = 1.25
        export_stream_traces(
            [StreamTrace(pid=1, name="s", frames=[(timelines[0], start)])],
            path,
        )
        xs = [
            e
            for e in json.loads(path.read_text())["traceEvents"]
            if e["ph"] == "X"
        ]
        assert min(e["ts"] for e in xs) >= start * 1e6

    def test_per_stream_fault_instants_are_process_scoped(
        self, faulted_fw, tmp_path
    ):
        path = tmp_path / "multi.json"
        frames = [(r.timeline, 0.1 * i) for i, r in enumerate(faulted_fw.reports)]
        export_stream_traces(
            [
                StreamTrace(
                    pid=4, name="s", frames=frames,
                    fault_log=faulted_fw.fault_log,
                )
            ],
            path,
        )
        instants = [
            e
            for e in json.loads(path.read_text())["traceEvents"]
            if e["ph"] == "i"
        ]
        assert len(instants) == 1
        assert instants[0]["pid"] == 4
        assert instants[0]["s"] == "p"  # scoped to the stream's process


@pytest.fixture(scope="module")
def faulted_fw():
    from repro.hw.noise import FaultEvent, FaultSchedule

    fw = FevesFramework(
        get_platform("SysNFF"),
        CFG,
        FrameworkConfig(
            faults=FaultSchedule(
                [FaultEvent(frame=3, device="GPU_F2", kind="dropout")]
            )
        ),
    )
    fw.run_model(5)
    return fw


class TestFaultExport:
    def test_fault_category_in_trace(self, faulted_fw):
        # the detection stall surfaces as a "fault"-category slice
        tl = faulted_fw.reports[2].timeline
        events = timeline_to_events(tl)
        faults = [
            e for e in events if e["ph"] == "X" and e.get("cat") == "fault"
        ]
        assert len(faults) == 1
        assert faults[0]["name"] == "FAULT[GPU_F2]"

    def test_fault_log_to_events(self, faulted_fw):
        from repro.hw.trace_export import fault_log_to_events

        offsets = {f: 0.1 * (f - 1) for f in range(1, 6)}
        events = fault_log_to_events(faulted_fw.fault_log, offsets)
        # only eventful frames produce instant events
        assert events
        assert all(e["ph"] == "i" for e in events)
        assert any("GPU_F2" in e["name"] for e in events)

    def test_chrome_trace_includes_fault_instants(self, faulted_fw, tmp_path):
        path = tmp_path / "trace.json"
        export_chrome_trace(
            [r.timeline for r in faulted_fw.reports],
            path,
            fault_log=faulted_fw.fault_log,
        )
        payload = json.loads(path.read_text())
        instants = [e for e in payload["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 1  # one eviction event

    def test_export_fault_log_roundtrip(self, faulted_fw, tmp_path):
        from repro.hw.trace_export import export_fault_log

        path = tmp_path / "faults.json"
        n = export_fault_log(faulted_fw.fault_log, path)
        assert n == len(faulted_fw.fault_log)
        payload = json.loads(path.read_text())
        assert [e["frame"] for e in payload] == list(range(1, 6))
        ev = payload[2]
        assert ev["evicted"] == ["GPU_F2"]
        assert ev["time_lost_s"] > 0
        assert "dropout at frame 3" in ev["reasons"]["GPU_F2"]
