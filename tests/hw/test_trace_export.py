"""Chrome trace-event export."""

import json

import pytest

from repro.codec.config import CodecConfig
from repro.core.config import FrameworkConfig
from repro.core.framework import FevesFramework
from repro.hw.presets import get_platform
from repro.hw.trace_export import export_chrome_trace, timeline_to_events

CFG = CodecConfig(width=1920, height=1088, search_range=16, num_ref_frames=1)


@pytest.fixture(scope="module")
def timelines():
    fw = FevesFramework(get_platform("SysHK"), CFG, FrameworkConfig())
    fw.run_model(4)
    return [r.timeline for r in fw.reports]


class TestTraceExport:
    def test_events_structure(self, timelines):
        events = timeline_to_events(timelines[0])
        durations = [e for e in events if e["ph"] == "X"]
        metas = [e for e in events if e["ph"] == "M"]
        assert durations and metas
        for e in durations:
            assert e["ts"] >= 0 and e["dur"] > 0
            assert e["cat"] in ("kernel", "transfer_in", "transfer_out")

    def test_resources_become_threads(self, timelines):
        events = timeline_to_events(timelines[0])
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert "GPU_K.compute" in names
        assert "CPU_H.compute" in names

    def test_file_export_valid_json(self, timelines, tmp_path):
        path = tmp_path / "trace.json"
        n = export_chrome_trace(timelines, path)
        assert n > 0
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        xs = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == n

    def test_frames_laid_out_sequentially(self, timelines, tmp_path):
        path = tmp_path / "trace.json"
        export_chrome_trace(timelines, path)
        payload = json.loads(path.read_text())
        by_frame: dict[int, list[float]] = {}
        for e in payload["traceEvents"]:
            if e["ph"] == "X":
                by_frame.setdefault(e["args"]["frame"], []).append(e["ts"])
        frames = sorted(by_frame)
        for a, b in zip(frames, frames[1:]):
            assert min(by_frame[b]) >= max(by_frame[a]) - 1e-6

    def test_zero_duration_barriers_skipped(self, timelines, tmp_path):
        events = timeline_to_events(timelines[0])
        assert not any(
            e["ph"] == "X" and e["name"] in ("tau1", "tau2") for e in events
        )
