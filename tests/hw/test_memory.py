"""Device memory footprint model."""

import pytest

from repro.codec.config import CodecConfig
from repro.hw.memory import (
    device_footprint,
    max_reference_frames,
    validate_platform_memory,
)
from repro.hw.presets import GPU_F, GPU_K, get_platform

HD = CodecConfig(width=1920, height=1088, search_range=16, num_ref_frames=4)
UHD = CodecConfig(width=3840, height=2176, search_range=16, num_ref_frames=16)


class TestFootprint:
    def test_sf_dominates(self):
        fp = device_footprint(HD)
        assert fp.sfs > fp.refs + fp.current + fp.mvs

    def test_sf_is_16x_luma_per_reference(self):
        fp = device_footprint(HD)
        luma = 1920 * 1088
        assert fp.sfs == HD.num_ref_frames * 16 * luma

    def test_scales_with_refs(self):
        one = device_footprint(
            CodecConfig(width=1920, height=1088, num_ref_frames=1)
        )
        four = device_footprint(HD)
        assert four.sfs == 4 * one.sfs

    def test_rstar_adds_working_recon(self):
        plain = device_footprint(HD, is_rstar=False)
        rstar = device_footprint(HD, is_rstar=True)
        assert rstar.total > plain.total

    def test_total_sums_parts(self):
        fp = device_footprint(HD)
        assert fp.total == fp.refs + fp.sfs + fp.current + fp.mvs + fp.overhead


class TestCapacity:
    def test_1080p_fits_the_paper_gpus(self):
        """At the paper's settings both GPUs hold the full working set."""
        for spec in (GPU_F, GPU_K):
            assert max_reference_frames(spec, HD) == 16

    def test_4k_exceeds_fermi(self):
        """At 4K the 16-RF SF alone (~2 GiB) outgrows the GTX 580."""
        refs_f = max_reference_frames(GPU_F, UHD)
        refs_k = max_reference_frames(GPU_K, UHD)
        assert refs_f < 16
        assert refs_k > refs_f  # 3 GiB card holds more references

    def test_unmodelled_memory_unbounded(self):
        from repro.hw.device import DeviceSpec
        from repro.hw.interconnect import LinkSpec

        no_mem = DeviceSpec(
            name="g", kind="gpu", rates=GPU_F.rates,
            link=LinkSpec(h2d_gbps=1, d2h_gbps=1),
        )
        assert max_reference_frames(no_mem, UHD) == 16


class TestValidation:
    def test_paper_configs_validate(self):
        for name in ("SysNF", "SysNFF", "SysHK"):
            for refs in (1, 4, 8):
                cfg = CodecConfig(width=1920, height=1088, num_ref_frames=refs)
                out = validate_platform_memory(get_platform(name), cfg)
                assert out  # every accelerator reported

    def test_oversized_config_rejected_with_guidance(self):
        with pytest.raises(ValueError, match="max_reference_frames"):
            validate_platform_memory(get_platform("SysNF"), UHD)

    def test_cpu_never_checked(self):
        out = validate_platform_memory(get_platform("SysHK"), HD)
        assert "CPU_H" not in out
