"""Fast DES evaluation vs the reference Kahn loop, and validate_schedule.

``Simulator.run(fast=True)`` (the default) evaluates the event graph with
index-based adjacency and a deque ready-queue; ``fast=False`` keeps the
original dict-based reference loop. Both must emit the same ops with the
same float start/end times in the same record order, fault or no fault.

``validate_schedule`` was rewritten to skip the unconditional re-sort
when records are already in (start, end) order per resource — the common
case, since the simulator emits them sorted. These tests pin that its
observable behavior (what passes, what raises, and with which message)
did not move.
"""

from __future__ import annotations

import random

import pytest

from repro.hw.des import Op, OpRecord, Resource, Simulator, validate_schedule


def random_graph(seed: int, n_res: int = 3, n_ops: int = 24):
    """Random DAG over a few resources; deps only point backwards."""
    rng = random.Random(seed)
    resources = [Resource(f"r{i}") for i in range(n_res)]
    ops: list[Op] = []
    for k in range(n_ops):
        deps = rng.sample(ops, k=min(len(ops), rng.randint(0, 2)))
        ops.append(Op(
            f"op{k}",
            rng.choice(resources),
            rng.choice((0.0, 0.25, 0.5, 1.0, 1.75)),
            deps=deps,
        ))
    return resources


def run_records(seed: int, fast: bool):
    recs = Simulator(random_graph(seed)).run(fast=fast)
    return [(r.label, r.resource, r.category, r.start, r.end) for r in recs]


@pytest.mark.parametrize("seed", range(8))
def test_fast_matches_reference_on_random_dags(seed):
    assert run_records(seed, fast=True) == run_records(seed, fast=False)


def test_fast_matches_reference_with_thunks():
    def build():
        order = []
        r1, r2 = Resource("r1"), Resource("r2")
        a = Op("a", r1, 2.0, thunk=lambda op: order.append("a"))
        b = Op("b", r2, 1.0, deps=[a], thunk=lambda op: order.append("b"))
        Op("c", r1, 0.5, deps=[b], thunk=lambda op: order.append("c"))
        return Simulator([r1, r2]), order

    sim_fast, order_fast = build()
    recs_fast = sim_fast.run(fast=True)
    sim_ref, order_ref = build()
    recs_ref = sim_ref.run(fast=False)
    assert order_fast == order_ref == ["a", "b", "c"]
    assert recs_fast == recs_ref


def test_fast_detects_cycles_like_reference():
    for fast in (True, False):
        r1, r2 = Resource("r1"), Resource("r2")
        a = Op("a", r1, 1.0)
        b = Op("b", r2, 1.0, deps=[a])
        a.deps.append(b)
        with pytest.raises(RuntimeError, match="cycle"):
            Simulator([r1, r2]).run(fast=fast)


def test_fast_start_end_are_python_floats():
    """The determinism digests hash ``repr(op.start)``; numpy scalars
    would change the repr without changing the value."""
    r = Resource("r")
    a = Op("a", r, 1.5)
    b = Op("b", r, 0.5)
    Simulator([r]).run(fast=True)
    for op in (a, b):
        assert type(op.start) is float
        assert type(op.end) is float


class TestValidateSchedule:
    def test_sorted_input_passes_without_resort(self):
        recs = [
            OpRecord("a", "r", "compute", 0.0, 1.0),
            OpRecord("b", "r", "compute", 1.0, 2.0),
            OpRecord("c", "q", "compute", 0.5, 0.75),
        ]
        validate_schedule(recs)  # must not raise

    def test_unsorted_input_still_validated(self):
        """Out-of-order records are re-sorted before the overlap check —
        the skip-resort fast path must not change what is accepted."""
        recs = [
            OpRecord("b", "r", "compute", 1.0, 2.0),
            OpRecord("a", "r", "compute", 0.0, 1.0),
        ]
        validate_schedule(recs)  # valid schedule, merely unsorted

    def test_unsorted_overlap_detected(self):
        recs = [
            OpRecord("b", "r", "compute", 1.0, 3.0),
            OpRecord("a", "r", "compute", 0.0, 2.0),
        ]
        with pytest.raises(AssertionError, match="overlap"):
            validate_schedule(recs)

    def test_sorted_overlap_detected(self):
        recs = [
            OpRecord("a", "r", "compute", 0.0, 2.0),
            OpRecord("b", "r", "compute", 1.0, 3.0),
        ]
        with pytest.raises(AssertionError, match="overlap"):
            validate_schedule(recs)

    def test_zero_duration_records_ignored(self):
        recs = [
            OpRecord("a", "r", "compute", 0.0, 2.0),
            OpRecord("tau", "r", "compute", 1.0, 1.0),  # instantaneous marker
        ]
        validate_schedule(recs)

    def test_back_to_back_zero_gap_passes(self):
        recs = [
            OpRecord("a", "r", "compute", 0.0, 1.0),
            OpRecord("b", "r", "compute", 1.0, 1.5),
        ]
        validate_schedule(recs)

    def test_equal_starts_ordered_by_end(self):
        """Ties on start are broken by end (the stable lexsort key)."""
        recs = [
            OpRecord("b", "r", "compute", 0.0, 0.0),
            OpRecord("a", "r", "compute", 0.0, 1.0),
        ]
        validate_schedule(recs)
