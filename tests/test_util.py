"""Utility helpers: validation and wall timing."""

import time

import pytest

from repro.util.timing import WallTimer
from repro.util.validation import (
    check_multiple_of,
    check_positive,
    check_power_of_two,
    check_range,
    check_type,
)


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1e-9)
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive("x", 0)
        with pytest.raises(ValueError):
            check_positive("x", -3)

    def test_check_range(self):
        check_range("q", 5, 0, 10)
        check_range("q", 0, 0, 10)
        check_range("q", 10, 0, 10)
        with pytest.raises(ValueError, match="q must be in"):
            check_range("q", 11, 0, 10)

    def test_check_multiple_of(self):
        check_multiple_of("w", 32, 16)
        with pytest.raises(ValueError):
            check_multiple_of("w", 33, 16)
        with pytest.raises(ValueError):
            check_multiple_of("w", 0, 16)
        with pytest.raises(ValueError):
            check_multiple_of("w", -16, 16)

    def test_check_power_of_two(self):
        for good in (1, 2, 64, 1024):
            check_power_of_two("n", good)
        for bad in (0, 3, 12, -4):
            with pytest.raises(ValueError):
                check_power_of_two("n", bad)

    def test_check_type(self):
        check_type("s", "abc", str)
        with pytest.raises(TypeError, match="s must be int"):
            check_type("s", "abc", int)


class TestWallTimer:
    def test_accumulates(self):
        t = WallTimer()
        for _ in range(3):
            with t:
                time.sleep(0.002)
        assert t.count == 3
        assert t.total_s >= 0.006
        assert t.mean_s == pytest.approx(t.total_s / 3)

    def test_reset(self):
        t = WallTimer()
        with t:
            pass
        t.reset()
        assert t.count == 0 and t.total_s == 0.0
        assert t.mean_s == 0.0

    def test_exception_still_recorded(self):
        t = WallTimer()
        with pytest.raises(RuntimeError):
            with t:
                raise RuntimeError("boom")
        assert t.count == 1
