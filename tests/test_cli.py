"""Command-line interface."""

import pytest

from repro.cli import main
from repro.video.generator import moving_objects_sequence
from repro.video.yuv import write_yuv420


class TestCli:
    def test_platforms(self, capsys):
        assert main(["platforms"]) == 0
        out = capsys.readouterr().out
        assert "SysHK" in out and "SysNFF" in out

    def test_run(self, capsys):
        assert main(["run", "--platform", "SysHK", "--frames", "10"]) == 0
        out = capsys.readouterr().out
        assert "steady-state" in out
        assert "R* device: GPU_K" in out

    def test_run_cpu_centric(self, capsys):
        assert main(
            ["run", "--platform", "SysNF", "--frames", "5", "--centric", "cpu"]
        ) == 0
        assert "R* device: CPU_N" in capsys.readouterr().out

    def test_unknown_platform_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--platform", "SysXY"])

    def test_encode_decode_roundtrip(self, tmp_path, capsys):
        clip = moving_objects_sequence(width=64, height=48, count=3, seed=2)
        src = tmp_path / "in.yuv"
        write_yuv420(src, clip)
        stream = tmp_path / "out.fevs"
        rc = main([
            "encode", str(src), "--size", "64x48", "--out", str(stream),
            "--sa", "8", "--qp", "30",
        ])
        assert rc == 0
        assert stream.exists()
        recon = tmp_path / "recon.yuv"
        assert main(["decode", str(stream), "--out", str(recon)]) == 0
        out = capsys.readouterr().out
        assert "decoded 3 frames" in out
        # decoded YUV has the right size
        assert recon.stat().st_size == 3 * 64 * 48 * 3 // 2

    def test_encode_missing_frames_errors(self, tmp_path, capsys):
        empty = tmp_path / "empty.yuv"
        empty.write_bytes(b"")
        rc = main([
            "encode", str(empty), "--size", "64x48",
            "--out", str(tmp_path / "x.fevs"),
        ])
        assert rc == 1

    def test_bad_size_argument(self):
        with pytest.raises(SystemExit):
            main(["encode", "x.yuv", "--size", "64by48", "--out", "o.fevs"])

    def test_trace_export(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        rc = main(["trace", "--platform", "SysNF", "--frames", "3",
                   "--out", str(out)])
        assert rc == 0
        import json

        payload = json.loads(out.read_text())
        assert any(e.get("ph") == "X" for e in payload["traceEvents"])

    def test_run_with_fault_injection(self, tmp_path, capsys):
        log = tmp_path / "faults.json"
        rc = main([
            "run", "--platform", "SysNFF", "--frames", "8",
            "--drop", "GPU_F2@4", "--fault-log", str(log),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "live devices at end: ['CPU_N', 'GPU_F']" in out
        assert "frame 4: evicted GPU_F2" in out
        import json

        payload = json.loads(log.read_text())
        assert len(payload) == 8
        assert payload[3]["evicted"] == ["GPU_F2"]

    def test_run_hang_and_degrade_flags(self, capsys):
        rc = main([
            "run", "--platform", "SysNFF", "--frames", "10",
            "--hang", "GPU_F2@3:2", "--degrade", "GPU_F@6:1.5",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "evicted GPU_F2" in out
        assert "readmitted GPU_F2" in out

    def test_bad_fault_spec_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "--platform", "SysNFF", "--frames", "5",
                  "--drop", "GPU_F2"])
        with pytest.raises(SystemExit):
            main(["run", "--platform", "SysNFF", "--frames", "5",
                  "--hang", "GPU_F2@3"])

    @pytest.mark.parametrize(
        "flag,spec,why",
        [
            ("--drop", "GPU_F2", "missing '@'"),
            ("--drop", "@4", "empty device name"),
            ("--drop", "GPU_F2@four", "non-integer frame"),
            ("--drop", "GPU_F2@4:2", "unexpected ':PARAM'"),
            ("--hang", "GPU_F2@3", "missing ':PARAM'"),
            ("--hang", "GPU_F2@3:x", "non-numeric parameter"),
            ("--degrade", "GPU_F2@3:", "non-numeric parameter"),
            ("--degrade", "GPU_F2@0:2", "frame must be >= 1"),
            ("--copy-fail", "GPU_F2@3:0.5", "fault factor must be >= 1"),
        ],
    )
    def test_fault_spec_error_names_token(self, flag, spec, why, capsys):
        """Malformed fault specs fail eagerly, naming the offending token."""
        with pytest.raises(SystemExit) as exc:
            main(["run", "--platform", "SysNFF", "--frames", "5", flag, spec])
        msg = str(exc.value)
        assert repr(spec) in msg       # the offending token, quoted
        assert flag in msg             # which flag it came from
        assert why in msg              # what is wrong with it
        assert "Traceback" not in capsys.readouterr().err


class TestServeCli:
    def test_serve_reports_per_stream_metrics(self, capsys):
        rc = main(["serve", "--streams", "3", "--frames", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        for col in ("p50 ms", "p95 ms", "p99 ms", "miss", "wait s"):
            assert col in out
        assert "s00" in out and "s02" in out
        assert "aggregate:" in out and "deadline-miss=" in out
        assert "admission: 3 admitted" in out
        assert "device utilization:" in out

    def test_serve_exports_json_and_trace(self, tmp_path, capsys):
        mpath, tpath = tmp_path / "m.json", tmp_path / "t.json"
        rc = main([
            "serve", "--streams", "2", "--frames", "3",
            "--json", str(mpath), "--trace", str(tpath),
        ])
        assert rc == 0
        import json

        metrics = json.loads(mpath.read_text())
        assert len(metrics["streams"]) == 2
        assert metrics["rounds"] > 0
        trace = json.loads(tpath.read_text())
        assert {e["pid"] for e in trace["traceEvents"]} == {1, 2}

    def test_serve_submit_scripted_workload(self, capsys):
        rc = main([
            "serve",
            "--submit", "0:25:3:realtime",
            "--submit", "0.1:15:2:background",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "realtime" in out and "background" in out

    def test_serve_bad_submit_names_token(self):
        with pytest.raises(SystemExit, match="0:25:ten"):
            main(["serve", "--submit", "0:25:ten"])

    def test_serve_with_dropout_shows_fault(self, capsys):
        rc = main([
            "serve", "--streams", "2", "--frames", "4",
            "--drop", "GPU_K@2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fault events observed across streams: 2" in out

    def test_serve_unknown_fault_device_exits(self):
        with pytest.raises(SystemExit):
            main(["serve", "--streams", "2", "--drop", "nope@2"])

    @pytest.mark.parametrize("flag,value", [
        ("--streams", "3"),
        ("--arrival-rate", "2.0"),
    ])
    def test_serve_submit_clash_names_flag(self, flag, value):
        with pytest.raises(SystemExit, match=flag.replace("-", "[-]")):
            main(["serve", "--submit", "0:25:3", flag, value])

    def test_serve_submit_clash_names_both_flags(self):
        with pytest.raises(
            SystemExit, match="[-]{2}streams and [-]{2}arrival[-]rate"
        ):
            main([
                "serve", "--submit", "0:25:3",
                "--streams", "3", "--arrival-rate", "2.0",
            ])

    def test_serve_help_documents_submit_precedence(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--help"])
        out = capsys.readouterr().out
        assert "cannot be combined with --submit" in out


class TestFleetCli:
    def test_fleet_reports_nodes_and_classes(self, capsys):
        rc = main([
            "fleet", "--nodes", "2", "--platforms", "SysHK,SysNF",
            "--streams", "4", "--frames", "3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2-node fleet" in out
        assert "n0" in out and "n1" in out
        assert "SysNF" in out
        assert "aggregate:" in out
        assert "peak-concurrent=" in out

    def test_fleet_node_fault_reroutes(self, capsys):
        rc = main([
            "fleet", "--nodes", "3", "--platforms", "SysHK,SysNF",
            "--streams", "6", "--frames", "5",
            "--node-fault", "n0@0.15",
            "--sanitize",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "node-faults=1" in out
        assert "down" in out
        assert "schedule sanitizer: clean" in out

    def test_fleet_exports_json_and_trace(self, tmp_path, capsys):
        import json

        mpath, tpath = tmp_path / "m.json", tmp_path / "t.json"
        rc = main([
            "fleet", "--nodes", "2", "--streams", "3", "--frames", "3",
            "--json", str(mpath), "--trace", str(tpath),
        ])
        assert rc == 0
        metrics = json.loads(mpath.read_text())
        assert metrics["n_nodes"] == 2
        assert len(metrics["nodes"]) == 2
        trace = json.loads(tpath.read_text())
        pids = {e["pid"] for e in trace["traceEvents"]}
        assert pids and all(p >= 1001 for p in pids)

    def test_fleet_submit_scripted_workload(self, capsys):
        rc = main([
            "fleet", "--nodes", "2",
            "--submit", "0:25:3:realtime",
            "--submit", "0.1:15:2:background",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "realtime" in out and "background" in out

    def test_fleet_submit_clash_rejected(self):
        with pytest.raises(SystemExit, match="[-]{2}streams"):
            main(["fleet", "--submit", "0:25:3", "--streams", "4"])

    def test_fleet_bad_node_fault_names_token(self):
        with pytest.raises(SystemExit, match="n0@x"):
            main(["fleet", "--node-fault", "n0@x"])

    def test_fleet_unknown_fault_node_exits(self):
        with pytest.raises(SystemExit, match="n9"):
            main(["fleet", "--nodes", "2", "--node-fault", "n9@0.5"])

    def test_fleet_unknown_platform_exits(self):
        with pytest.raises(SystemExit, match="SysXX"):
            main(["fleet", "--platforms", "SysXX"])

    def test_fleet_bad_policy_exits(self):
        with pytest.raises(SystemExit):
            main(["fleet", "--policy", "round-robin"])

    def test_fleet_autoscale_prints_events(self, capsys):
        rc = main([
            "fleet", "--nodes", "1", "--platforms", "SysNF",
            "--max-queue", "1", "--autoscale", "--max-nodes", "3",
            "--streams", "8", "--frames", "3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "autoscale: " in out and " add " in out
