"""Schedule-sanitizer tests: clean runs stay clean, seeded bugs are caught.

One mutation test per violation class of the design: (a) engine races,
(b) dependency/τ races, (c) conservation, (d) service invariants. Each
seeds a bug into an otherwise-valid timeline/report and asserts the
sanitizer reports exactly that class.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.codec.config import CodecConfig
from repro.core.bounds import ExtraTransfers
from repro.core.config import FrameworkConfig
from repro.core.distribution import Distribution
from repro.core.framework import FevesFramework
from repro.hw.des import OpRecord
from repro.hw.noise import FaultEvent, FaultSchedule
from repro.hw.presets import get_platform
from repro.hw.timeline import FrameTimeline
from repro.sanitizers import ScheduleViolationError, TimelineSanitizer

CODEC = CodecConfig(width=704, height=576)


def run_framework(platform="SysNF", frames=4, faults=None):
    fw = FevesFramework(
        get_platform(platform),
        CODEC,
        FrameworkConfig(faults=faults or FaultSchedule()),
    )
    for _ in range(frames):
        fw.encode_next_inter()
    return fw


@pytest.fixture(scope="module")
def clean_fw():
    return run_framework()


def rules_of(report):
    return {v.rule for v in report.violations}


# ---------------------------------------------------------------- clean


class TestCleanRuns:
    def test_clean_run_has_no_violations(self, clean_fw):
        report = TimelineSanitizer.for_framework(clean_fw).check_run(clean_fw)
        assert report.clean, report.summary()

    def test_faulted_run_is_still_clean(self):
        faults = FaultSchedule(
            events=(
                FaultEvent(frame=2, device="GPU_F", kind="dropout"),
            )
        )
        fw = run_framework("SysNFF", frames=6, faults=faults)
        report = TimelineSanitizer.for_framework(fw).check_run(fw)
        assert report.clean, report.summary()

    def test_raise_if_dirty_passes_quietly_on_clean(self, clean_fw):
        san = TimelineSanitizer.for_framework(clean_fw)
        san.check_report(clean_fw.reports[-1]).raise_if_dirty()

    def test_intra_placeholder_reports_are_skipped(self, clean_fw):
        san = TimelineSanitizer.for_framework(clean_fw)
        intra = dataclasses.replace(clean_fw.reports[-1], frame_index=0)
        assert san.check_report(intra).clean


# ------------------------------------------------- class (a): engine races


class TestEngineRaces:
    def synthetic(self, records, tau1=10.0, tau2=20.0, tau_tot=30.0):
        return FrameTimeline(
            frame_index=1, records=records, tau1=tau1, tau2=tau2,
            tau_tot=tau_tot,
        )

    def test_overlap_on_one_engine_fires_a1(self):
        san = TimelineSanitizer(get_platform("SysNF"), mb_rows=CODEC.mb_rows)
        tl = self.synthetic([
            OpRecord("ME[GPU_F]", "GPU_F.compute", "compute", 0.0, 2.0),
            OpRecord("INT[GPU_F]", "GPU_F.compute", "compute", 1.5, 3.0),
        ])
        assert "SAN-A1" in rules_of(san.check_timeline(tl))

    def test_back_to_back_ops_do_not_fire(self):
        san = TimelineSanitizer(get_platform("SysNF"), mb_rows=CODEC.mb_rows)
        tl = self.synthetic([
            OpRecord("ME[GPU_F]", "GPU_F.compute", "compute", 0.0, 2.0),
            OpRecord("INT[GPU_F]", "GPU_F.compute", "compute", 2.0, 3.0),
        ])
        assert san.check_timeline(tl).clean

    def test_copies_beyond_engine_count_fire_a2(self):
        platform = get_platform("SysNF")
        gpu = platform.gpus[0]
        engines = gpu.spec.link.copy_engines
        # One more concurrent copy than the link has engines, each on its
        # own (bogus) resource so the per-resource overlap check can't
        # see it — only the per-device concurrency sweep can.
        records = [
            OpRecord(
                f"RF[{gpu.name}]", f"{gpu.name}.copy{i}", "h2d",
                0.0, 2.0,
            )
            for i in range(engines + 1)
        ]
        san = TimelineSanitizer(platform, mb_rows=CODEC.mb_rows)
        report = san.check_timeline(self.synthetic(records))
        assert "SAN-A2" in rules_of(report)
        assert "SAN-A1" not in rules_of(report)


# --------------------------------------------- class (b): dependency races


class TestDependencyRaces:
    def test_tau_ordering_violation_fires_b1(self):
        san = TimelineSanitizer(get_platform("SysNF"), mb_rows=CODEC.mb_rows)
        tl = FrameTimeline(
            frame_index=1, records=[], tau1=2.0, tau2=1.0, tau_tot=3.0
        )
        assert "SAN-B1" in rules_of(san.check_timeline(tl))

    def test_sme_before_tau1_fires_b2(self):
        san = TimelineSanitizer(get_platform("SysNF"), mb_rows=CODEC.mb_rows)
        tl = FrameTimeline(
            frame_index=1,
            records=[
                OpRecord("SME[GPU_F]", "GPU_F.compute", "compute", 0.5, 4.0),
            ],
            tau1=1.0, tau2=5.0, tau_tot=6.0,
        )
        assert "SAN-B2" in rules_of(san.check_timeline(tl))

    def test_op_past_tau_tot_fires_b2(self):
        san = TimelineSanitizer(get_platform("SysNF"), mb_rows=CODEC.mb_rows)
        tl = FrameTimeline(
            frame_index=1,
            records=[
                OpRecord("R*[GPU_F]", "GPU_F.compute", "compute", 5.0, 7.0),
            ],
            tau1=1.0, tau2=5.0, tau_tot=6.0,
        )
        assert "SAN-B2" in rules_of(san.check_timeline(tl))

    def test_rstar_probe_is_exempt_from_tau_tot(self):
        san = TimelineSanitizer(get_platform("SysNF"), mb_rows=CODEC.mb_rows)
        tl = FrameTimeline(
            frame_index=1,
            records=[
                OpRecord("R*probe[CPU_N]", "CPU_N.compute", "compute", 5.0, 7.0),
            ],
            tau1=1.0, tau2=5.0, tau_tot=6.0,
        )
        assert san.check_timeline(tl).clean


# ------------------------------------------------ class (c): conservation


class TestConservation:
    def test_rows_dropped_from_m_fire_c1(self, clean_fw):
        san = TimelineSanitizer.for_framework(clean_fw)
        report = clean_fw.reports[-1]
        rows = list(report.decision.m.rows)
        donor = max(range(len(rows)), key=lambda i: rows[i])
        rows[donor] -= 1  # lose one MB row
        broken = dataclasses.replace(report)
        broken.decision = dataclasses.replace(
            report.decision, m=Distribution(tuple(rows), sum(rows))
        )
        assert "SAN-C1" in rules_of(san.check_report(broken))

    def test_wrong_delta_m_fires_c2(self, clean_fw):
        san = TimelineSanitizer.for_framework(clean_fw)
        report = clean_fw.reports[-1]
        platform = clean_fw.platform
        i = next(
            j for j, d in enumerate(platform.devices) if d.is_accelerator
        )
        deltas = list(report.decision.delta_m)
        bogus = ExtraTransfers(segments=((0, deltas[i].rows + 3),),
                               rows=deltas[i].rows + 3)
        deltas[i] = bogus
        broken = dataclasses.replace(report)
        broken.decision = dataclasses.replace(
            report.decision, delta_m=tuple(deltas)
        )
        assert "SAN-C2" in rules_of(san.check_report(broken))

    def test_corrupted_nbytes_fires_c3(self, clean_fw):
        san = TimelineSanitizer.for_framework(clean_fw)
        report = clean_fw.reports[-1]
        assert report.transfer_plan.items, "test needs a non-empty plan"
        broken = dataclasses.replace(report)
        broken.transfer_plan = dataclasses.replace(report.transfer_plan)
        item = report.transfer_plan.items[0]
        broken.transfer_plan.items = [
            dataclasses.replace(item, nbytes=item.nbytes + 1)
        ] + report.transfer_plan.items[1:]
        assert "SAN-C3" in rules_of(san.check_report(broken))

    def test_sigma_leak_fires_c4(self, clean_fw):
        san = TimelineSanitizer.for_framework(clean_fw)
        report = next(
            r for r in clean_fw.reports
            if r.frame_index > 0 and r.decision.sigma
        )
        name = next(iter(report.decision.sigma))
        sg = report.decision.sigma[name]
        leaked = ExtraTransfers(segments=sg.segments, rows=sg.rows + 1)
        broken = dataclasses.replace(report)
        broken.decision = dataclasses.replace(
            report.decision,
            sigma={**report.decision.sigma, name: leaked},
        )
        assert "SAN-C4" in rules_of(san.check_report(broken))

    def test_cross_frame_sigma_handover_mismatch_fires_c4(self):
        fw = run_framework("SysNFF", frames=6)
        san = TimelineSanitizer.for_framework(fw)
        # Pick a frame whose decision tracks deferred-SF state and whose
        # successor plans transfers for that device, then claim it
        # deferred rows the successor never catches up.
        idx, name = next(
            (k, n)
            for k, r in enumerate(fw.reports[:-1])
            if r.frame_index > 0
            for n in r.decision.sigma_r
            if fw.reports[k + 1].transfer_plan.for_device(n)
        )
        prev = fw.reports[idx]
        rem = prev.decision.sigma_r[name]
        fw.reports[idx] = dataclasses.replace(prev)
        fw.reports[idx].decision = dataclasses.replace(
            prev.decision,
            sigma_r={
                **prev.decision.sigma_r,
                name: ExtraTransfers(
                    segments=rem.segments, rows=rem.rows + 5
                ),
            },
        )
        out = san.check_run(fw)
        assert "SAN-C4" in rules_of(out)
        assert any(
            v.rule == "SAN-C4" and "catches up" in v.message
            for v in out.violations
        )


# -------------------------------------------- class (d): service invariants


class TestServiceInvariants:
    def serve(self, faults=None):
        from repro.service.service import EncodingService, ServiceConfig
        from repro.service.session import StreamSpec

        cfg = ServiceConfig(
            platform="SysNF", faults=faults or FaultSchedule()
        )
        service = EncodingService(cfg)
        service.run([
            StreamSpec(stream_id="s1", fps_target=25.0, n_frames=4),
            StreamSpec(stream_id="s2", fps_target=12.5, n_frames=3,
                       arrival_s=0.01),
        ])
        return service

    def test_clean_service_run(self):
        service = self.serve()
        report = TimelineSanitizer.check_service(service)
        assert report.clean, report.summary()

    def test_oversubscribed_round_fires_d1(self):
        service = self.serve()
        session = service.sessions[0]
        rec = session.records[-1]
        session.records[-1] = dataclasses.replace(rec, share=1.7)
        assert "SAN-D1" in rules_of(TimelineSanitizer.check_service(service))

    def test_work_on_faulted_device_fires_d2(self, clean_fw):
        san = TimelineSanitizer.for_framework(clean_fw)
        report = clean_fw.reports[-1]
        busy = next(
            d.name
            for d in clean_fw.platform.devices
            if any(
                r.resource.startswith(f"{d.name}.") and r.duration > 0
                for r in report.timeline.records
            )
        )
        broken = dataclasses.replace(report, faulted=(busy,))
        assert "SAN-D2" in rules_of(san.check_report(broken))

    def test_session_on_down_device_fires_d2(self):
        faults = FaultSchedule(
            events=(FaultEvent(frame=2, device="GPU_F", kind="dropout"),)
        )
        service = self.serve(faults=faults)
        # Pretend the fault round produced work on the dead device by
        # grafting a pre-fault (GPU-busy) timeline onto a post-fault frame.
        session = service.sessions[0]
        post = next(r for r in session.records if r.round >= 2)
        pre_report = session.framework.reports[0]
        session.framework.reports[post.index - 1] = dataclasses.replace(
            session.framework.reports[post.index - 1],
            timeline=pre_report.timeline,
        )
        assert "SAN-D2" in rules_of(TimelineSanitizer.check_service(service))


# ----------------------------------------------------------- strict mode


class TestStrictMode:
    def test_error_message_lists_violations(self, clean_fw):
        san = TimelineSanitizer.for_framework(clean_fw)
        report = clean_fw.reports[-1]
        broken = dataclasses.replace(report, faulted=("GPU_F",))
        out = san.check_report(broken)
        with pytest.raises(ScheduleViolationError) as err:
            out.raise_if_dirty()
        assert "SAN-D2" in str(err.value)
        assert err.value.violations
        assert isinstance(err.value, AssertionError)

    def test_summary_groups_by_rule(self, clean_fw):
        san = TimelineSanitizer.for_framework(clean_fw)
        broken = dataclasses.replace(
            clean_fw.reports[-1], faulted=("GPU_F", "CPU_N")
        )
        out = san.check_report(broken)
        assert "SAN-D2" in out.summary()
        assert out.to_dict()["count"] == len(out.violations)
