"""Static-lint tests: each REP rule fires on seeded code, noqa suppresses,
and the repo's own ``src/`` tree is clean."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.sanitizers.lint import (
    LINT_RULES,
    lint_file,
    lint_paths,
    lint_source,
)

SIM_PATH = Path("src/repro/hw/fake_module.py")
OTHER_PATH = Path("src/repro/report/fake_module.py")


def rules_of(violations):
    return {v.rule for v in violations}


class TestRep001WallClock:
    def test_time_call_in_sim_path_fires(self):
        src = "import time\nt0 = time.perf_counter()\n"
        assert "REP001" in rules_of(lint_source(src, SIM_PATH))

    def test_from_import_fires(self):
        src = "from time import perf_counter\n"
        assert "REP001" in rules_of(lint_source(src, SIM_PATH))

    def test_outside_sim_paths_is_allowed(self):
        src = "import time\nt0 = time.perf_counter()\n"
        assert lint_source(src, OTHER_PATH) == []

    def test_util_timing_is_out_of_scope(self):
        # The one sanctioned wall-clock site lives in util/, not hw/core.
        assert lint_source(
            "import time\nt0 = time.monotonic()\n",
            Path("src/repro/util/timing.py"),
        ) == []

    def test_non_clock_time_attrs_are_allowed(self):
        src = "import time\ntime.sleep(0.1)\n"
        assert lint_source(src, SIM_PATH) == []


class TestRep002FloatEquality:
    def test_eq_against_float_literal_fires(self):
        assert "REP002" in rules_of(lint_source("ok = x == 0.0\n", SIM_PATH))

    def test_noteq_fires(self):
        assert "REP002" in rules_of(lint_source("ok = t != 1.5\n", OTHER_PATH))

    def test_integer_literal_is_allowed(self):
        assert lint_source("ok = n == 0\n", SIM_PATH) == []

    def test_inequality_is_allowed(self):
        assert lint_source("ok = x <= 0.0\n", SIM_PATH) == []


class TestRep003DeviceMutation:
    def test_assignment_outside_device_module_fires(self):
        src = "dev.fault_compute_scale = 2.0\n"
        assert "REP003" in rules_of(lint_source(src, SIM_PATH))

    def test_augmented_assignment_fires(self):
        src = "dev.share_scale *= 0.5\n"
        assert "REP003" in rules_of(lint_source(src, OTHER_PATH))

    def test_device_module_itself_is_allowed(self):
        src = "self.fault_copy_scale = 1.0\n"
        assert lint_source(src, Path("src/repro/hw/device.py")) == []

    def test_reading_the_attribute_is_allowed(self):
        src = "x = dev.fault_compute_scale\n"
        assert lint_source(src, SIM_PATH) == []


class TestRep004UnguardedDivision:
    def test_bare_division_by_rate_fires(self):
        src = "def f(bw):\n    return nbytes / bw\n"
        assert "REP004" in rules_of(lint_source(src, SIM_PATH))

    def test_attribute_rate_fires(self):
        src = "def f(spec):\n    return 1.0 / spec.h2d_rate\n"
        assert "REP004" in rules_of(lint_source(src, SIM_PATH))

    def test_if_guard_suppresses(self):
        src = (
            "def f(bw):\n"
            "    if bw <= 0:\n"
            "        return 0.0\n"
            "    return nbytes / bw\n"
        )
        assert lint_source(src, SIM_PATH) == []

    def test_max_clamp_suppresses(self):
        src = "def f(bw):\n    return nbytes / max(bw, 1e-9)\n"
        assert lint_source(src, SIM_PATH) == []

    def test_or_fallback_suppresses(self):
        src = "def f(bw):\n    return nbytes / (bw or 1.0)\n"
        assert lint_source(src, SIM_PATH) == []

    def test_non_rate_name_is_allowed(self):
        src = "def f(n):\n    return total / n\n"
        assert lint_source(src, SIM_PATH) == []


class TestNoqa:
    def test_bare_noqa_suppresses_everything(self):
        src = "ok = x == 0.0  # noqa\n"
        assert lint_source(src, SIM_PATH) == []

    def test_coded_noqa_suppresses_named_rule(self):
        src = "ok = x == 0.0  # noqa: REP002\n"
        assert lint_source(src, SIM_PATH) == []

    def test_coded_noqa_with_reason_text(self):
        src = "r = 1.0 / fps  # noqa: REP004 - validated at construction\n"
        assert lint_source(src, SIM_PATH) == []

    def test_wrong_code_does_not_suppress(self):
        src = "ok = x == 0.0  # noqa: REP004\n"
        assert "REP002" in rules_of(lint_source(src, SIM_PATH))


class TestHarness:
    def test_syntax_error_reports_rep000(self):
        out = lint_source("def broken(:\n", SIM_PATH)
        assert [v.rule for v in out] == ["REP000"]

    def test_violation_str_is_location_first(self):
        (v,) = lint_source("ok = x == 0.0\n", SIM_PATH)
        assert str(v).startswith(f"{SIM_PATH}:1:")
        assert "REP002" in str(v)

    def test_lint_file_and_paths(self, tmp_path):
        bad = tmp_path / "repro" / "hw" / "clocky.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nt = time.time()\n")
        (tmp_path / "repro" / "hw" / "__pycache__").mkdir()
        (tmp_path / "repro" / "hw" / "__pycache__" / "junk.py").write_text(
            "x == 0.0\n"
        )
        out = lint_paths([tmp_path])
        assert rules_of(out) == {"REP001"}
        assert lint_file(bad)[0].rule == "REP001"

    def test_rule_table_is_complete(self):
        assert set(LINT_RULES) == {"REP001", "REP002", "REP003", "REP004"}


class TestRepoIsClean:
    def test_src_tree_is_lint_clean(self):
        root = Path(__file__).resolve().parents[2] / "src"
        assert root.is_dir()
        violations = lint_paths([root])
        assert violations == [], "\n".join(str(v) for v in violations)


class TestCli:
    def test_lint_command_exits_zero_on_clean_tree(self, capsys):
        from repro.cli import main

        root = Path(__file__).resolve().parents[2] / "src"
        assert main(["lint", str(root)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_command_reports_violations(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "repro" / "core" / "clocky.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nt = time.time()\nok = t == 0.0\n")
        assert main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "REP001" in out
        assert "REP002" in out

    def test_lint_command_json_format(self, tmp_path, capsys):
        import json

        from repro.cli import main

        bad = tmp_path / "repro" / "core" / "clocky.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("t = x == 0.0\n")
        assert main(["lint", "--format", "json", str(tmp_path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["rule"] == "REP002"
        assert payload[0]["line"] == 1

    def test_lint_command_rejects_missing_path(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="no such file"):
            main(["lint", "definitely/not/a/path"])
