"""CLI behavior of ``repro lint``: formats, baseline workflow, exit codes."""

import json
from pathlib import Path

import pytest

from repro.cli import main

BUGGY = (
    "def schedule(events):\n"
    "    pending = {e.key for e in events}\n"
    "    out = []\n"
    "    for key in pending:\n"
    "        out.append(key)\n"
    "    return out\n"
)

CLEAN = (
    "def schedule(events):\n"
    "    pending = {e.key for e in events}\n"
    "    return [key for key in sorted(pending)]\n"
)

# Whole-plane write from a band task: the minimal REP203 mutant.
EXEC_BUGGY = (
    "def int_task(row0, nrows):\n"
    '    _VIEWS["sf0"][:, :] = 0\n'
)


@pytest.fixture
def tree(tmp_path: Path) -> Path:
    mod = tmp_path / "src" / "repro" / "hw" / "sched.py"
    mod.parent.mkdir(parents=True)
    mod.write_text(BUGGY)
    return tmp_path


def lint(tree: Path, *extra: str) -> int:
    baseline = tree / "baseline.json"
    return main(
        ["lint", "--baseline", str(baseline), *extra, str(tree / "src")]
    )


class TestExitCodes:
    def test_findings_exit_1(self, tree):
        assert lint(tree) == 1

    def test_clean_exit_0(self, tree, capsys):
        (tree / "src" / "repro" / "hw" / "sched.py").write_text(CLEAN)
        assert lint(tree) == 0
        out = capsys.readouterr().out
        assert "clean" in out
        assert "REP101" in out and "REP104" in out  # dataflow rules ran

    def test_internal_error_exit_2(self, tree):
        # A corrupt baseline is an analyzer-infrastructure failure, not
        # a lint finding: distinct exit code so CI can tell them apart.
        (tree / "baseline.json").write_text('{"version": 99}')
        assert lint(tree) == 2


class TestFormats:
    def test_json_is_sorted_and_stable(self, tree, capsys):
        extra = tree / "src" / "repro" / "hw" / "aaa.py"
        extra.write_text(BUGGY)
        assert lint(tree, "--format", "json") == 1
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list) and payload
        assert payload[0]["rule"] == "REP102"
        keys = [(v["path"], v["line"], v["rule"]) for v in payload]
        assert keys == sorted(keys)

    def test_sarif_structure(self, tree, capsys):
        assert lint(tree, "--format", "sarif") == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {
            "REP001", "REP101", "REP102", "REP103", "REP104",
            "REP201", "REP202", "REP203", "REP204",
        } <= rule_ids
        result = run["results"][0]
        assert result["ruleId"] == "REP102"
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"].endswith("sched.py")
        assert loc["region"]["startLine"] >= 1


class TestBaselineWorkflow:
    def test_write_then_lint_is_clean(self, tree, capsys):
        assert lint(tree, "--write-baseline") == 0
        baseline = json.loads((tree / "baseline.json").read_text())
        assert baseline["version"] == 1
        assert baseline["findings"]
        # With the baseline in place the same findings no longer fail.
        assert lint(tree) == 0
        assert "baselined finding(s) suppressed" in capsys.readouterr().err

    def test_new_finding_still_fails_with_baseline(self, tree):
        assert lint(tree, "--write-baseline") == 0
        extra = tree / "src" / "repro" / "hw" / "new_bug.py"
        extra.write_text(BUGGY)
        assert lint(tree) == 1

    def test_no_baseline_flag_reports_everything(self, tree):
        assert lint(tree, "--write-baseline") == 0
        assert lint(tree, "--no-baseline") == 1

    def test_missing_baseline_file_is_empty_baseline(self, tree):
        assert not (tree / "baseline.json").exists()
        assert lint(tree) == 1


class TestSelectAndSummary:
    @pytest.fixture
    def exec_tree(self, tree: Path) -> Path:
        mod = tree / "src" / "repro" / "exec" / "task.py"
        mod.parent.mkdir(parents=True)
        mod.write_text(EXEC_BUGGY)
        return tree

    def test_concurrency_rules_run_by_default(self, exec_tree, capsys):
        assert lint(exec_tree, "--format", "json") == 1
        payload = json.loads(capsys.readouterr().out)
        assert {v["rule"] for v in payload} == {"REP102", "REP203"}

    def test_select_scopes_to_prefix(self, exec_tree, capsys):
        # --select REP2 runs only the concurrency layer: the REP102 bug
        # in hw/sched.py must not be reported (or even analyzed).
        assert lint(exec_tree, "--select", "REP2", "--format", "json") == 1
        payload = json.loads(capsys.readouterr().out)
        assert {v["rule"] for v in payload} == {"REP203"}

    def test_select_single_rule(self, exec_tree, capsys):
        assert lint(exec_tree, "--select", "REP102", "--format", "json") == 1
        payload = json.loads(capsys.readouterr().out)
        assert {v["rule"] for v in payload} == {"REP102"}

    def test_select_unknown_prefix_errors(self, exec_tree):
        with pytest.raises(SystemExit):
            lint(exec_tree, "--select", "REP9")

    def test_select_clean_lists_only_selected(self, exec_tree, capsys):
        (exec_tree / "src" / "repro" / "exec" / "task.py").write_text(
            "def int_task(row0, nrows):\n    return row0 + nrows\n"
        )
        (exec_tree / "src" / "repro" / "hw" / "sched.py").write_text(CLEAN)
        assert lint(exec_tree, "--select", "REP2") == 0
        out = capsys.readouterr().out
        assert "clean" in out and "REP201" in out and "REP204" in out
        assert "REP102" not in out

    def test_summary_prints_per_rule_timing_rows(self, exec_tree, capsys):
        assert lint(exec_tree, "--select", "REP2", "--summary") == 1
        err = capsys.readouterr().err
        rows = {
            line.split()[0]: line
            for line in err.splitlines()
            if line.startswith("REP")
        }
        assert {"REP201", "REP202", "REP203", "REP204"} <= set(rows)
        assert "ms" in rows["REP203"]
        assert rows["REP203"].rstrip().endswith("1")  # one finding
        assert rows["REP201"].rstrip().endswith("0")

    def test_noqa_suppresses_concurrency_rule(self, exec_tree):
        (exec_tree / "src" / "repro" / "exec" / "task.py").write_text(
            "def int_task(row0, nrows):\n"
            '    _VIEWS["sf0"][:, :] = 0  # noqa: REP203\n'
        )
        assert lint(exec_tree, "--select", "REP2") == 0


class TestSummaryCache:
    def test_cache_is_written_and_reused(self, tree):
        cache = tree / "cache.json"
        assert lint(tree, "--summary-cache", str(cache)) == 1
        assert cache.exists()
        first = json.loads(cache.read_text())
        assert first["version"] == 1
        # Second run with an unchanged tree reuses the entries (same
        # shas) and must produce identical results.
        assert lint(tree, "--summary-cache", str(cache)) == 1
        assert json.loads(cache.read_text()) == first

    def test_cache_invalidates_on_source_change(self, tree):
        cache = tree / "cache.json"
        assert lint(tree, "--summary-cache", str(cache)) == 1
        mod = tree / "src" / "repro" / "hw" / "sched.py"
        first = json.loads(cache.read_text())
        (sha_entry,) = [
            m["sha"] for k, m in first["modules"].items() if "sched" in k
        ]
        mod.write_text(CLEAN)
        assert lint(tree, "--summary-cache", str(cache)) == 0
        second = json.loads(cache.read_text())
        (sha2,) = [
            m["sha"] for k, m in second["modules"].items() if "sched" in k
        ]
        assert sha2 != sha_entry
