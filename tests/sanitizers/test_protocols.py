"""Layer-5 protocol analysis: DSL validation, REP3xx mutants, SAN-G pins.

Three layers of coverage:

1. the spec DSL itself — malformed specs must fail *at construction*
   with named-token errors, and every shipped spec must round-trip
   through its own validator;
2. the static half — one seeded mutant and one clean twin per rule
   (REP301–REP304), analyzed under in-scope display paths;
3. the dynamic half — the same bug classes reproduced on *real* runtime
   objects with the lifecycle journal enabled, caught by SAN-G replay.

The static/dynamic agreement pins (same mutant caught by both halves)
live in the ``TestAgreement`` class at the bottom.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.cluster import Cluster, ClusterConfig, NodeSpec
from repro.cluster.node import DOWN, Node
from repro.sanitizers.protocols import (
    PROTOCOL_RULES,
    analyze_source,
    rules_for_path,
)
from repro.sanitizers.protocols.journal import JOURNAL
from repro.sanitizers.protocols.monitor import check_events
from repro.sanitizers.protocols.spec import (
    CLASS_SPECS,
    SPEC_BY_NAME,
    SPECS,
    Obligation,
    Observer,
    ProtocolSpec,
    ProtocolSpecError,
    Transition,
)
from repro.service.session import StreamSpec

CLUSTER_PATH = "src/repro/cluster/fake_module.py"
CORE_PATH = "src/repro/core/fake_module.py"


def run(source: str, *, only=None, path: str = CLUSTER_PATH):
    violations, errors = analyze_source(
        textwrap.dedent(source), path, only=only
    )
    assert not errors, errors
    return violations


def rules_hit(source: str, **kw) -> list[str]:
    return [v.rule for v in run(source, **kw)]


@pytest.fixture
def journal():
    """Force the lifecycle journal on for one test, drained at exit."""
    JOURNAL.reset()
    JOURNAL.enable()
    yield JOURNAL
    JOURNAL.disable()
    JOURNAL.reset()


def make_node(**kw):
    spec_kw = {"node_id": "n0", "platform": "SysHK"}
    spec_kw.update(kw)
    return Node(NodeSpec(**spec_kw))


# ---------------------------------------------------------------------------
# 1. The DSL: malformed specs fail at construction with named tokens.


class TestSpecDsl:
    def test_unknown_state_in_transition(self):
        with pytest.raises(ProtocolSpecError, match="unknown state"):
            ProtocolSpec(
                name="bad",
                classes=("X",),
                states=("a",),
                initial="a",
                transitions=(Transition("go", ("a",), "nowhere"),),
            )

    def test_unknown_initial_state(self):
        with pytest.raises(ProtocolSpecError, match="unknown state"):
            ProtocolSpec(name="bad", classes=("X",), states=("a",), initial="b")

    def test_unknown_state_in_observer(self):
        with pytest.raises(ProtocolSpecError, match="unknown state"):
            ProtocolSpec(
                name="bad",
                classes=("X",),
                states=("a",),
                initial="a",
                observers=(Observer("peek", ("b",)),),
            )

    def test_unreachable_terminal(self):
        with pytest.raises(ProtocolSpecError, match="unreachable terminal"):
            ProtocolSpec(
                name="bad",
                classes=("X",),
                states=("a", "b"),
                initial="a",
                terminal=("b",),  # no transition ever reaches it
            )

    def test_duplicate_transition(self):
        with pytest.raises(ProtocolSpecError, match="duplicate transition"):
            ProtocolSpec(
                name="bad",
                classes=("X",),
                states=("a", "b"),
                initial="a",
                transitions=(
                    Transition("go", ("a",), "b"),
                    Transition("go", ("a",), "a"),  # ambiguous from 'a'
                ),
            )

    def test_duplicate_state(self):
        with pytest.raises(ProtocolSpecError, match="duplicate state"):
            ProtocolSpec(
                name="bad", classes=("X",), states=("a", "a"), initial="a"
            )

    def test_method_cannot_be_transition_and_observer(self):
        with pytest.raises(ProtocolSpecError, match="both a"):
            ProtocolSpec(
                name="bad",
                classes=("X",),
                states=("a",),
                initial="a",
                transitions=(Transition("go", ("a",), "a"),),
                observers=(Observer("go", ("a",)),),
            )

    def test_require_terminal_needs_a_terminal(self):
        with pytest.raises(ProtocolSpecError, match="require_terminal"):
            ProtocolSpec(
                name="bad",
                classes=("X",),
                states=("a",),
                initial="a",
                require_terminal=True,
            )

    def test_obligation_unknown_kind(self):
        with pytest.raises(ProtocolSpecError, match="unknown kind"):
            Obligation(name="o", trigger="t", discharge=("d",), kind="weird")

    def test_obligation_empty_discharge(self):
        with pytest.raises(ProtocolSpecError, match="empty discharge"):
            Obligation(name="o", trigger="t", discharge=())


class TestShippedSpecs:
    """Every shipped spec round-trips through its own validator."""

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
    def test_roundtrip_compiles(self, spec):
        # Reconstructing from the declared fields re-runs the eager
        # validation; equality proves nothing was normalized away.
        again = ProtocolSpec(
            name=spec.name,
            classes=spec.classes,
            states=spec.states,
            initial=spec.initial,
            transitions=spec.transitions,
            terminal=spec.terminal,
            observers=spec.observers,
            obligations=spec.obligations,
            require_terminal=spec.require_terminal,
        )
        assert again == spec
        assert again.by_method == spec.by_method

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
    def test_step_agrees_with_allowed_sources(self, spec):
        methods = set(spec.by_method) | set(spec.observer_states)
        for state in spec.states:
            for method in methods:
                legal = state in spec.allowed_sources(method)
                assert (spec.step(state, method) is not None) == legal

    def test_every_tracked_class_maps_to_one_spec(self):
        for cls, spec in CLASS_SPECS.items():
            assert cls in spec.classes
        assert set(SPEC_BY_NAME) == {s.name for s in SPECS}

    def test_methods_outside_alphabet_are_neutral(self):
        spec = SPEC_BY_NAME["node"]
        assert spec.step("up", "not_a_protocol_method") == "up"


# ---------------------------------------------------------------------------
# 2. Static half: one mutant + clean twin per rule.


class TestRep301Typestate:
    def test_step_after_retire_is_flagged(self):
        assert "REP301" in rules_hit(
            """\
            from repro.cluster.node import Node

            def shutdown_one(spec, stream, t):
                node = Node(spec)
                node.offer(stream, t)
                node.retire(t, "down")
                node.step()
            """
        )

    def test_retire_then_step_on_one_branch_only(self):
        # The violating path goes through the if-branch; the join must
        # keep the 'retired' possibility alive (may-analysis).
        assert "REP301" in rules_hit(
            """\
            from repro.cluster.node import Node

            def maybe_retire(spec, t, flaky):
                node = Node(spec)
                if flaky:
                    node.retire(t, "down")
                node.step()
            """
        )

    def test_step_before_retire_is_clean(self):
        assert not rules_hit(
            """\
            from repro.cluster.node import Node

            def run_one(spec, stream, t):
                node = Node(spec)
                node.offer(stream, t)
                node.step()
                node.retire(t, "down")
            """
        )

    def test_view_after_close_is_flagged(self):
        assert "REP301" in rules_hit(
            """\
            from repro.exec.shm import SharedFrameStore

            def leak(layout):
                store = SharedFrameStore(layout)
                store.close()
                return store.view("orig")
            """,
            path="src/repro/exec/fake_module.py",
        )

    def test_unlink_before_close_is_flagged(self):
        assert "REP301" in rules_hit(
            """\
            from multiprocessing.shared_memory import SharedMemory

            def teardown(name):
                seg = SharedMemory(name=name)
                seg.unlink()
                seg.close()
            """,
            path="src/repro/exec/fake_module.py",
        )

    def test_close_then_unlink_is_clean(self):
        assert not rules_hit(
            """\
            from multiprocessing.shared_memory import SharedMemory

            def teardown(name):
                seg = SharedMemory(name=name)
                seg.close()
                seg.unlink()
            """,
            path="src/repro/exec/fake_module.py",
        )


class TestRep302Clocks:
    def test_rewind_is_flagged(self):
        assert "REP302" in rules_hit(
            """\
            class EncodingService:
                def hurry(self, t):
                    self.now = self.now - 5.0
            """
        )

    def test_cross_domain_assignment_is_flagged(self):
        assert "REP302" in rules_hit(
            """\
            class Dispatcher:
                def sync(self, node):
                    self.now = node.service.now
            """
        )

    def test_monotone_pull_is_clean(self):
        assert not rules_hit(
            """\
            class EncodingService:
                def advance(self, t):
                    self.now = max(self.now, t)
            """
        )

    def test_seed_in_init_is_clean(self):
        assert not rules_hit(
            """\
            class EncodingService:
                def __init__(self):
                    self.now = 0.0
            """
        )

    def test_bare_reset_outside_init_is_flagged(self):
        assert "REP302" in rules_hit(
            """\
            class EncodingService:
                def restart(self):
                    self.now = 0.0
            """
        )


class TestRep303Conservation:
    def test_pop_with_bailing_branch_is_flagged(self):
        assert "REP303" in rules_hit(
            """\
            class Dispatcher:
                def drain(self, t):
                    while self.queue:
                        head = self.queue.popleft()
                        node = self.pick(head)
                        if node is None:
                            return 0
                        self._place(head, node, t)
                    return 1
            """
        )

    def test_peek_then_pop_is_clean(self):
        # The shipped drain shape: decide on the head first, pop only
        # once a placement is guaranteed.
        assert not rules_hit(
            """\
            class Dispatcher:
                def drain(self, t):
                    while self.queue:
                        head = self.queue[0]
                        node = self.pick(head)
                        if node is None:
                            return 0
                        self.queue.popleft()
                        self._place(head, node, t)
                    return 1
            """
        )

    def test_pop_disposed_on_all_branches_is_clean(self):
        assert not rules_hit(
            """\
            class Dispatcher:
                def drain(self, t):
                    while self.queue:
                        head = self.queue.popleft()
                        node = self.pick(head)
                        if node is None:
                            self.reject(head)
                        else:
                            self._place(head, node, t)
            """
        )


class TestRep304Invalidation:
    def test_mutation_then_solve_is_flagged(self):
        assert "REP304" in rules_hit(
            """\
            class FevesFramework:
                def readmit(self, name):
                    self._live[name] = True
                    return self.balancer.solve(self.perf)
            """,
            path=CORE_PATH,
        )

    def test_mutation_escaping_function_is_flagged(self):
        assert "REP304" in rules_hit(
            """\
            class FevesFramework:
                def evict(self, name):
                    self._live[name] = False
            """,
            path=CORE_PATH,
        )

    def test_invalidate_between_is_clean(self):
        assert not rules_hit(
            """\
            class FevesFramework:
                def readmit(self, name):
                    self._live[name] = True
                    self.balancer.note_live_set_change()
                    return self.balancer.solve(self.perf)
            """,
            path=CORE_PATH,
        )

    def test_transitive_reach_to_solve_is_flagged(self):
        # The solve sits two calls away; only the call graph sees it.
        assert "REP304" in rules_hit(
            """\
            class FevesFramework:
                def _decide(self):
                    return self.balancer.solve(self.perf)

                def _replan(self):
                    return self._decide()

                def readmit(self, name):
                    self._live[name] = True
                    return self._replan()
            """,
            path=CORE_PATH,
        )


# ---------------------------------------------------------------------------
# 3. Scoping and registry plumbing.


class TestScopes:
    def test_all_rules_run_in_cluster_scope(self):
        assert set(rules_for_path(CLUSTER_PATH)) >= {
            "REP301",
            "REP302",
            "REP303",
        }

    def test_rep304_is_core_scoped(self):
        assert "REP304" in rules_for_path(CORE_PATH)
        assert "REP304" not in rules_for_path(CLUSTER_PATH)

    def test_out_of_scope_path_runs_nothing(self):
        assert rules_for_path("src/repro/video/generator.py") == []

    def test_noqa_suppresses(self):
        src = """\
        from repro.cluster.node import Node

        def shutdown_one(spec, t):
            node = Node(spec)
            node.retire(t, "down")
            node.step()  # noqa: REP301
        """
        assert not rules_hit(src)

    def test_rule_table_is_complete(self):
        assert set(PROTOCOL_RULES) == {
            "REP301",
            "REP302",
            "REP303",
            "REP304",
        }


# ---------------------------------------------------------------------------
# 4. Dynamic half: the same bug classes on real objects, via SAN-G.


class TestSanGDynamic:
    def test_step_after_retire_caught(self, journal):
        node = make_node()
        node.offer(StreamSpec("a", n_frames=2), now=0.0)
        node.retire(1.0, DOWN)
        try:
            node.step()  # protocol violation; may also fail functionally
        except Exception:
            pass
        report = check_events(journal.drain())
        assert any(
            v.rule == "SAN-G1" and "step()" in v.message
            for v in report.violations
        )

    def test_clock_rewind_caught(self, journal):
        node = make_node()
        node.offer(StreamSpec("a", n_frames=2), now=5.0)
        # Simulate the pre-fix bug: a restart stamping the clock straight
        # from its argument instead of pulling it monotonically.
        node.service.now = 1.0
        node.step()
        report = check_events(journal.drain())
        assert any(
            v.rule == "SAN-G1" and "clock ran backwards" in v.message
            for v in report.violations
        )

    def test_dropped_dequeue_caught(self, journal):
        # Saturate a one-node fleet so submissions park, then run a
        # mutant drain that pops the head and drops it on the floor.
        cluster = Cluster(
            ClusterConfig(nodes=(NodeSpec("n0", max_queue=1),))
        )
        for i in range(12):
            cluster.dispatcher.submit(
                StreamSpec(f"s{i}", n_frames=2, fps_target=25.0), t=0.0
            )
        assert cluster.dispatcher.depth > 0
        from repro.sanitizers.protocols.journal import record as _journal

        d = cluster.dispatcher
        head = d.queue.popleft()
        _journal(d, "dequeue", d.now, detail=head.stream_id)
        # ... and no disposition ever happens.
        report = check_events(journal.drain())
        assert any(
            v.rule == "SAN-G2" and "dequeue-disposition" in v.message
            for v in report.violations
        )

    def test_clean_fleet_run_passes(self, journal):
        wl = [StreamSpec(f"s{i}", n_frames=2, fps_target=25.0) for i in range(4)]
        cluster = Cluster(
            ClusterConfig(nodes=(NodeSpec("n0"), NodeSpec("n1")))
        )
        cluster.run(wl)
        events = journal.drain()
        assert events  # the run was journaled
        report = check_events(events)
        assert report.clean, report.summary()


# ---------------------------------------------------------------------------
# 5. Agreement pins: one mutant per rule, caught by BOTH halves.


class TestAgreement:
    """The declarative spec drives lint and monitor identically."""

    def test_rep301_and_san_g1_agree_on_retired_node(self, journal):
        mutant = """\
        from repro.cluster.node import Node

        def shutdown_one(spec, t):
            node = Node(spec)
            node.retire(t, "down")
            node.step()
        """
        assert "REP301" in rules_hit(mutant, only=["REP301"])

        node = make_node()
        node.retire(0.0, DOWN)
        try:
            node.step()
        except Exception:
            pass
        report = check_events(journal.drain())
        assert any(v.rule == "SAN-G1" for v in report.violations)

    def test_rep302_and_san_g1_agree_on_clock_rewind(self, journal):
        mutant = """\
        class EncodingService:
            def restart(self, start_s):
                self.now = start_s
        """
        assert "REP302" in rules_hit(mutant, only=["REP302"])

        # Dynamic twin: the same bug shape on a real node — a restart
        # stamping the clock from its argument instead of max()-pulling.
        node = make_node()
        node.offer(StreamSpec("a", n_frames=2), now=5.0)
        node.service.now = 1.0
        node.step()
        report = check_events(journal.drain())
        assert any(
            v.rule == "SAN-G1" and "clock ran backwards" in v.message
            for v in report.violations
        )

    def test_rep303_and_san_g2_agree_on_dropped_dequeue(self, journal):
        mutant = """\
        class Dispatcher:
            def drain(self, t):
                while self.queue:
                    head = self.queue.popleft()
                    node = self.pick(head)
                    if node is None:
                        return 0
                    self._place(head, node, t)
        """
        assert "REP303" in rules_hit(mutant, only=["REP303"])

        # Dynamic twin: a real dispatcher pops a parked stream and
        # never disposes of it.
        cluster = Cluster(
            ClusterConfig(nodes=(NodeSpec("n0", max_queue=1),))
        )
        for i in range(12):
            cluster.dispatcher.submit(
                StreamSpec(f"s{i}", n_frames=2, fps_target=25.0), t=0.0
            )
        from repro.sanitizers.protocols.journal import record as _journal

        d = cluster.dispatcher
        head = d.queue.popleft()
        _journal(d, "dequeue", d.now, detail=head.stream_id)
        report = check_events(journal.drain())
        assert any(
            v.rule == "SAN-G2" and "dequeue-disposition" in v.message
            for v in report.violations
        )

    def test_rep304_and_san_g2_agree_on_stale_solve(self, journal, monkeypatch):
        mutant = """\
        class FevesFramework:
            def readmit(self, name):
                self._live[name] = True
                return self.balancer.solve(self.perf)
        """
        assert "REP304" in rules_hit(mutant, only=["REP304"], path=CORE_PATH)

        # Dynamic twin: disable the invalidation hook and run a fault
        # that shrinks then regrows the live set — consecutive solves
        # over different live sets with no invalidate between them.
        from repro.codec.config import CodecConfig
        from repro.core.config import FrameworkConfig
        from repro.core.framework import FevesFramework
        from repro.core.load_balancing import LoadBalancer
        from repro.hw.noise import FaultEvent, FaultSchedule
        from repro.hw.presets import get_platform

        monkeypatch.setattr(
            LoadBalancer, "note_live_set_change", lambda self: None
        )
        fw = FevesFramework(
            get_platform("SysHK"),
            CodecConfig(width=1920, height=1088, search_range=16),
            FrameworkConfig(
                faults=FaultSchedule(
                    [FaultEvent(frame=3, device="GPU_K", kind="hang", duration=2)]
                )
            ),
        )
        fw.run_model(8)
        report = check_events(journal.drain())
        assert any(
            v.rule == "SAN-G2" and "invalidate-before-solve" in v.message
            for v in report.violations
        )

    def test_clean_framework_run_satisfies_both(self, journal):
        # The shipped source lints clean (the gate below) and a real
        # faulted run journals clean: live-set changes are invalidated.
        from repro.codec.config import CodecConfig
        from repro.core.config import FrameworkConfig
        from repro.core.framework import FevesFramework
        from repro.hw.noise import FaultEvent, FaultSchedule
        from repro.hw.presets import get_platform

        fw = FevesFramework(
            get_platform("SysHK"),
            CodecConfig(width=1920, height=1088, search_range=16),
            FrameworkConfig(
                faults=FaultSchedule(
                    [FaultEvent(frame=3, device="GPU_K", kind="hang", duration=2)]
                )
            ),
        )
        fw.run_model(8)
        report = check_events(journal.drain())
        assert report.clean, report.summary()


# ---------------------------------------------------------------------------
# 6. The gate: shipped sources pass every protocol rule.


class TestShippedSourcesClean:
    @pytest.mark.parametrize(
        "pkg", ["core", "service", "cluster", "exec"]
    )
    def test_package_lints_clean(self, pkg):
        from pathlib import Path

        from repro.sanitizers.protocols import analyze_paths

        root = Path(__file__).resolve().parents[2] / "src" / "repro" / pkg
        violations, errors = analyze_paths([root])
        assert not errors, errors
        assert violations == [], [str(v) for v in violations]
