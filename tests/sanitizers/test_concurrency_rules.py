"""Layer-4 concurrency lint: seeded mutants vs clean twins per rule.

Every rule ships as a pair: a minimal mutant that must be caught and a
clean twin (the same shape, correctly synchronized) that must pass.
Snippets are analyzed under an ``exec/``-scoped display path so the
rules actually run; the clean gate at the bottom proves the real
``src/repro/exec`` code passes everything with an empty baseline.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.sanitizers.concurrency import (
    CONCURRENCY_RULES,
    analyze_paths,
    analyze_source,
    rules_for_path,
)

REPO = Path(__file__).resolve().parents[2]
EXEC_PATH = "src/repro/exec/fake_module.py"


def run(source: str, *, only=None, path: str = EXEC_PATH):
    violations, errors = analyze_source(
        textwrap.dedent(source), path, only=only
    )
    assert not errors, errors
    return violations


def rules_hit(source: str, **kw) -> list[str]:
    return [v.rule for v in run(source, **kw)]


# ---------------------------------------------------------------------------
# REP201 — fork safety


class TestForkSafety:
    def test_module_level_lock_is_flagged(self):
        assert "REP201" in rules_hit(
            """\
            import threading

            _LOCK = threading.Lock()
            """
        )

    def test_initializer_reachable_thread_is_flagged(self):
        # The Thread lives two calls away from the initializer; only the
        # interprocedural call graph can see it.
        assert "REP201" in rules_hit(
            """\
            import threading
            from concurrent.futures import ProcessPoolExecutor

            def _helper():
                t = threading.Thread(target=print)
                t.start()

            def _attach_worker(layout):
                _helper()

            def build_pool():
                return ProcessPoolExecutor(
                    max_workers=2, initializer=_attach_worker
                )
            """
        )

    def test_lock_in_unreachable_helper_is_clean(self):
        assert not rules_hit(
            """\
            import threading
            from concurrent.futures import ProcessPoolExecutor

            def _attach_worker(layout):
                pass

            def unrelated_host_side():
                lock = threading.Lock()
                with lock:
                    pass

            def build_pool():
                return ProcessPoolExecutor(
                    max_workers=2, initializer=_attach_worker
                )
            """,
            only=["REP201"],
        )

    def test_lock_created_before_fork_is_flagged(self):
        assert "REP201" in rules_hit(
            """\
            import threading
            from concurrent.futures import ProcessPoolExecutor

            def _attach_worker(layout):
                pass

            def build_pool():
                lock = threading.Lock()
                return ProcessPoolExecutor(
                    max_workers=2, initializer=_attach_worker
                )
            """
        )

    def test_lock_created_after_pool_is_clean(self):
        assert not rules_hit(
            """\
            import threading
            from concurrent.futures import ProcessPoolExecutor

            def _attach_worker(layout):
                pass

            def build_pool():
                pool = ProcessPoolExecutor(
                    max_workers=2, initializer=_attach_worker
                )
                lock = threading.Lock()
                return pool
            """,
            only=["REP201"],
        )


# ---------------------------------------------------------------------------
# REP202 — cross-process payload hygiene


class TestPayloadHygiene:
    MUTANT = """\
        import numpy as np

        def submit_all(pool, store, row0, nrows):
            frame = store.view("cur")
            buf = np.zeros((4, 4))
            pool.submit(work, frame)
            pool.submit(work, buf)
            pool.submit(lambda: frame.sum())
    """

    def test_bulk_payloads_are_flagged(self):
        hits = run(self.MUTANT, only=["REP202"])
        assert [v.rule for v in hits] == ["REP202"] * 3
        assert [v.line for v in hits] == [6, 7, 8]

    def test_scalar_coordinates_are_clean(self):
        assert not rules_hit(
            """\
            def submit_all(pool, row0, nrows):
                return pool.submit(work, row0, nrows)
            """,
            only=["REP202"],
        )


# ---------------------------------------------------------------------------
# REP203 — shared-write band confinement


class TestBandConfinement:
    def test_write_past_the_band_is_flagged(self):
        assert "REP203" in rules_hit(
            """\
            def int_task(row0, nrows):
                px = 64
                lo = px * row0
                hi = px * (row0 + nrows) + px
                _VIEWS["sf0"][lo:hi, :] = 1
            """
        )

    def test_whole_plane_write_is_flagged(self):
        assert "REP203" in rules_hit(
            """\
            def int_task(row0, nrows):
                _VIEWS["sf0"][:, :] = 0
            """
        )

    def test_confined_band_write_is_clean(self):
        assert not rules_hit(
            """\
            def int_task(row0, nrows):
                px = 64
                band = _VIEWS["sf0"]
                lo = px * row0
                hi = px * (row0 + nrows)
                band[lo:hi, :] = 1
            """,
            only=["REP203"],
        )

    def test_host_write_after_submit_is_flagged(self):
        assert "REP203" in rules_hit(
            """\
            def run_frame(pool, store):
                futs = [pool.submit(task, 0, 4)]
                store.view("cur")[:, :] = 0
                for f in futs:
                    f.result()
            """,
            only=["REP203"],
        )

    def test_host_write_before_submit_is_clean(self):
        assert not rules_hit(
            """\
            def run_frame(pool, store):
                store.view("cur")[:, :] = 0
                futs = [pool.submit(task, 0, 4)]
                for f in futs:
                    f.result()
            """,
            only=["REP203"],
        )


# ---------------------------------------------------------------------------
# REP204 — barrier-ordered phases


class TestPhaseOrdering:
    def test_sme_submitted_before_tau1_is_flagged(self):
        assert "REP204" in rules_hit(
            """\
            def run_frame(pool):
                futs = [pool.submit_me(0, 4)]
                pool.submit_sme(0, 4)
                for f in futs:
                    f.result()
            """,
            only=["REP204"],
        )

    def test_staging_after_phase1_submit_is_flagged(self):
        assert "REP204" in rules_hit(
            """\
            def run_frame(pool, store):
                futs = [pool.submit_int(0, 4)]
                store.view("cur")[:, :] = 0
                for f in futs:
                    f.result()
            """,
            only=["REP204"],
        )

    def test_sf_read_before_barrier_is_flagged(self):
        assert "REP204" in rules_hit(
            """\
            def run_frame(pool, store):
                futs = [pool.submit_int(0, 4)]
                sf = store.view("sf0")
                for f in futs:
                    f.result()
                return sf
            """,
            only=["REP204"],
        )

    def test_correctly_ordered_frame_is_clean(self):
        assert not rules_hit(
            """\
            def run_frame(pool, store):
                store.view("cur")[:, :] = 0
                futs = [pool.submit_int(0, 4)]
                for f in futs:
                    f.result()
                sf = store.view("sf0")
                pool.submit_sme(0, 4)
                return sf
            """,
            only=["REP204"],
        )


# ---------------------------------------------------------------------------
# shared machinery: scoping, noqa, cross-module graph, clean gate


class TestMachinery:
    def test_scoping(self):
        assert rules_for_path("src/repro/exec/pool.py") == [
            "REP201", "REP202", "REP203", "REP204",
        ]
        assert rules_for_path("src/repro/hw/devices.py") == ["REP201"]
        assert rules_for_path("src/repro/core/scheduler.py") == []

    def test_noqa_suppresses(self):
        src = """\
            def int_task(row0, nrows):
                _VIEWS["sf0"][:, :] = 0  # noqa: REP203
            """
        assert not rules_hit(src, only=["REP203"])

    def test_cross_module_call_graph(self, tmp_path):
        # The initializer lives in a.py, the hazard it reaches in b.py:
        # only the graph spanning both modules connects them.
        pkg = tmp_path / "src" / "repro" / "exec"
        pkg.mkdir(parents=True)
        (pkg / "a.py").write_text(textwrap.dedent(
            """\
            from concurrent.futures import ProcessPoolExecutor
            from b import shared_helper

            def _attach_worker(layout):
                shared_helper()

            def build_pool():
                return ProcessPoolExecutor(
                    max_workers=2, initializer=_attach_worker
                )
            """
        ))
        (pkg / "b.py").write_text(textwrap.dedent(
            """\
            import threading

            def shared_helper():
                t = threading.Thread(target=print)
                t.start()
            """
        ))
        violations, errors = analyze_paths([tmp_path])
        assert not errors
        assert any(
            v.rule == "REP201" and v.path.endswith("b.py")
            for v in violations
        )

    def test_crash_free_over_the_repo(self):
        # Every rule must run to completion on every module we ship —
        # forced out of scope so e.g. hw/ code meets the exec/ rules.
        select = sorted(CONCURRENCY_RULES)
        for root in (REPO / "src", REPO / "tests"):
            for path in sorted(root.rglob("*.py")):
                _, errors = analyze_source(
                    path.read_text(), str(path), select=select
                )
                assert not errors, (path, errors)

    def test_src_tree_is_clean(self):
        violations, errors = analyze_paths([REPO / "src"])
        assert not errors, errors
        assert not violations, [str(v) for v in violations]
