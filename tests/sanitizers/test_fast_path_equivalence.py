"""Fast-path equivalence property: every optimization is bit-identical.

The warm-start LP, the characterization caches, and the vectorized DES
are pure performance work — with the rtol decision cache disabled
(``lb_cache_rtol=0.0``) they must reproduce the cold path's output
*exactly*: same timeline records (same floats), same distributions, same
taus, same fault log. This property drives random platforms × codecs ×
fault schedules through the cold configuration and through each
optimization toggled individually (plus all together) and diffs the full
run digests.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import FrameworkConfig
from repro.core.framework import FevesFramework
from repro.hw.presets import get_platform

from test_property import framework_scenarios

COLD = dict(lb_cache_rtol=0.0, lp_warm_start=False, char_cache=False,
            des_fast=False)

#: Each optimization alone, then all together.
VARIANTS = (
    ("lp_warm_start", dict(COLD, lp_warm_start=True)),
    ("char_cache", dict(COLD, char_cache=True)),
    ("des_fast", dict(COLD, des_fast=True)),
    ("all", dict(COLD, lp_warm_start=True, char_cache=True, des_fast=True)),
)


def run_digest(platform_name, codec, faults, frames, fw_kwargs):
    """Full bit-level digest of a run (None if faults killed every device)."""
    fw = FevesFramework(
        get_platform(platform_name), codec,
        FrameworkConfig(faults=faults, **fw_kwargs),
    )
    try:
        for _ in range(frames):
            fw.encode_next_inter()
    except RuntimeError:
        return None
    return {
        "records": [
            [(r.label, r.resource, r.category, r.start, r.end)
             for r in rep.timeline.records]
            for rep in fw.reports
        ],
        "taus": [
            (rep.timeline.tau1, rep.timeline.tau2, rep.timeline.tau_tot)
            for rep in fw.reports
        ],
        "distributions": [
            (rep.decision.m.rows, rep.decision.l.rows, rep.decision.s.rows)
            for rep in fw.reports
        ],
        "fault_log": list(fw.fault_log),
    }


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(framework_scenarios())
def test_each_optimization_is_bit_identical_to_cold(scenario):
    platform_name, codec, faults, frames = scenario
    cold = run_digest(platform_name, codec, faults, frames, COLD)
    for name, kwargs in VARIANTS:
        got = run_digest(platform_name, codec, faults, frames, kwargs)
        assert got == cold, (
            f"optimization {name!r} diverged from the cold path on "
            f"{platform_name} with faults={faults.events}"
        )
