"""``repro lint --jobs N``: output is byte-identical for any worker count.

The parallel runner splits at file granularity after a serial
whole-scope pass (dataflow summaries + call graph), and collects
results in input order — so stdout, exit code, and JSON payloads must
not depend on N. Runs the real CLI in subprocesses (the pool is a
``ProcessPoolExecutor``; in-process invocation would share the parent's
module cache and hide pickling regressions).
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"

#: A scope with real findings history and every rule family in scope
#: (REP0xx style, REP1xx dataflow, REP2xx concurrency, REP3xx protocols).
TARGETS = [
    str(SRC / "repro" / "exec"),
    str(SRC / "repro" / "cluster"),
    str(SRC / "repro" / "service"),
]

BUGGY = (
    "from repro.cluster.node import Node\n"
    "\n"
    "def shutdown_one(spec, t):\n"
    "    node = Node(spec)\n"
    "    node.retire(t, 'down')\n"
    "    node.step()\n"
    "\n"
    "class EncodingService:\n"
    "    def hurry(self):\n"
    "        self.now = self.now - 5.0\n"
)


def run_lint(args: list[str], jobs: int) -> subprocess.CompletedProcess:
    env = {"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin:/usr/local/bin"}
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", "--jobs", str(jobs), *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        timeout=600,
    )


class TestJobsEquivalence:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_clean_tree_output_identical(self, jobs):
        ref = run_lint([*TARGETS, "--no-baseline"], jobs=1)
        par = run_lint([*TARGETS, "--no-baseline"], jobs=jobs)
        assert par.returncode == ref.returncode, par.stderr
        assert par.stdout == ref.stdout

    def test_findings_identical_and_ordered(self, tmp_path):
        mod = tmp_path / "src" / "repro" / "cluster" / "mutant.py"
        mod.parent.mkdir(parents=True)
        mod.write_text(BUGGY)
        args = [str(tmp_path / "src"), "--no-baseline", "--format", "json"]
        ref = run_lint(args, jobs=1)
        par = run_lint(args, jobs=4)
        assert ref.returncode == 1  # the mutants were found...
        assert par.returncode == 1
        assert par.stdout == ref.stdout  # ...identically
        assert "REP301" in ref.stdout and "REP302" in ref.stdout

    def test_bad_jobs_value_rejected(self):
        proc = run_lint([*TARGETS[:1], "--no-baseline"], jobs=0)
        assert proc.returncode != 0
        assert "--jobs must be >= 1" in proc.stderr
