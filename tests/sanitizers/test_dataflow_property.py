"""Property: the dataflow analyzer is total over this repository.

Every rule is *forced* onto every Python file under ``src/`` and
``tests/`` (ignoring scoping), and none may raise an internal
:class:`AnalyzerError` — findings are fine, crashes are not.  The
scoped run over ``src/`` must additionally be finding-free, which is
the CI gate.
"""

from pathlib import Path

import pytest

from repro.sanitizers.dataflow import DATAFLOW_RULES, analyze_file, analyze_paths
from repro.sanitizers.lint import iter_python_files

REPO_ROOT = Path(__file__).resolve().parents[2]

ALL_FILES = [
    p
    for tree in ("src", "tests")
    for p in iter_python_files(REPO_ROOT / tree)
]

ALL_RULES = sorted(DATAFLOW_RULES)


@pytest.mark.parametrize(
    "path", ALL_FILES, ids=lambda p: str(p.relative_to(REPO_ROOT))
)
def test_analyzer_is_crash_free_on(path: Path):
    violations, errors = analyze_file(
        path, root=REPO_ROOT, select=ALL_RULES
    )
    assert errors == [], "\n".join(str(e) for e in errors)
    # Findings are allowed here (rules are forced out of scope); they
    # just must be well-formed.
    for v in violations:
        assert v.rule in DATAFLOW_RULES
        assert v.line >= 0 and v.col >= 0 and v.message


def test_scoped_run_over_src_is_clean():
    violations, errors = analyze_paths([REPO_ROOT / "src"])
    assert errors == []
    assert violations == [], "\n".join(str(v) for v in violations)


def test_fixpoint_terminates_on_pathological_loops():
    # Deep nesting + mutually-reassigned units must still converge
    # under the iteration budget.
    depth = 12
    lines = ["def f(tau_s, mb_rows, nbytes):"]
    indent = "    "
    for i in range(depth):
        lines.append(f"{indent * (i + 1)}while cond({i}):")
    body_indent = indent * (depth + 1)
    lines.append(f"{body_indent}tau_s, mb_rows = mb_rows, nbytes")
    lines.append(f"{body_indent}nbytes = tau_s")
    lines.append(f"{indent}return 0")
    source = "\n".join(lines) + "\n"

    from repro.sanitizers.dataflow import analyze_source

    violations, errors = analyze_source(
        source, "src/repro/hw/fake_deep.py", select=ALL_RULES
    )
    assert errors == []
