"""Golden-file tests for the REP1xx dataflow rules.

Each rule gets a seeded-bug mutant the analyzer MUST catch and a clean
twin that MUST stay silent — the mutant/twin pairs double as living
documentation of what each rule means.
"""

import textwrap

from repro.sanitizers.dataflow import (
    DATAFLOW_RULES,
    analyze_source,
    rules_for_path,
)

HW_PATH = "src/repro/hw/fake_module.py"
CORE_PATH = "src/repro/core/fake_module.py"
SERVICE_PATH = "src/repro/service/fake_module.py"
CALIB_PATH = "src/repro/hw/calibration.py"
EXEC_PATH = "src/repro/exec/fake_module.py"
OUTSIDE_PATH = "src/repro/util/fake_module.py"


def run(source: str, path: str, select=None):
    violations, errors = analyze_source(
        textwrap.dedent(source), path, select=select
    )
    assert errors == []
    return violations


def rules_hit(source: str, path: str, select=None):
    return {v.rule for v in run(source, path, select=select)}


class TestREP101Units:
    def test_seconds_plus_rows_is_caught(self):
        src = """
        def f(transfer_s: float, mb_rows: int) -> float:
            return transfer_s + mb_rows
        """
        assert "REP101" in rules_hit(src, HW_PATH)

    def test_rows_per_second_into_bytes_field_is_caught(self):
        src = """
        def f(plan, mb_rows, tau_s):
            plan.nbytes = mb_rows / tau_s
        """
        assert "REP101" in rules_hit(src, CORE_PATH)

    def test_consistent_arithmetic_is_clean(self):
        src = """
        def f(k_me, mb_rows, bw, row_bytes_per_row):
            compute_s = k_me * mb_rows
            transfer_s = mb_rows * row_bytes_per_row / bw
            return compute_s + transfer_s
        """
        assert rules_hit(src, HW_PATH) == set()

    def test_dimensionless_constants_are_compatible(self):
        src = """
        def f(tau_s):
            return max(0.0, tau_s) * 2
        """
        assert rules_hit(src, HW_PATH) == set()

    def test_mismatch_flows_through_assignment(self):
        src = """
        def f(mb_rows, duration_s):
            speed = mb_rows / duration_s   # rows/s, fine
            total_bytes = speed            # rows/s stored as bytes: bug
            return total_bytes
        """
        assert "REP101" in rules_hit(src, CORE_PATH)

    def test_branches_that_disagree_degrade_to_unknown(self):
        # One arm leaves `x` as seconds, the other as rows: after the
        # join the unit is unknown, so later use must NOT flag.
        src = """
        def f(cond, tau_s, mb_rows):
            if cond:
                x = tau_s
            else:
                x = mb_rows
            return x + 1.0
        """
        assert rules_hit(src, HW_PATH) == set()

    def test_summary_table_beats_naming_convention(self):
        # buffer_row_bytes ends in _bytes but its signature is bytes/row;
        # rows * bytes/row = bytes is clean.
        src = """
        def f(mb_rows, buf, sizes):
            nbytes = mb_rows * buffer_row_bytes(buf, sizes)
            return nbytes
        """
        assert rules_hit(src, CORE_PATH) == set()

    def test_min_mixing_units_is_caught(self):
        src = """
        def f(tau_s, mb_rows):
            return min(tau_s, mb_rows)
        """
        assert "REP101" in rules_hit(src, HW_PATH)

    def test_out_of_scope_path_is_silent(self):
        src = """
        def f(transfer_s, mb_rows):
            return transfer_s + mb_rows
        """
        assert rules_hit(src, OUTSIDE_PATH) == set()
        assert "REP101" not in rules_for_path(OUTSIDE_PATH)


class TestREP102Determinism:
    def test_for_loop_over_set_is_caught(self):
        src = """
        def schedule(events):
            pending = {e.key for e in events}
            out = []
            for key in pending:
                out.append(key)
            return out
        """
        assert "REP102" in rules_hit(src, HW_PATH)

    def test_sorted_iteration_is_clean(self):
        src = """
        def schedule(events):
            pending = {e.key for e in events}
            out = []
            for key in sorted(pending):
                out.append(key)
            return out
        """
        assert rules_hit(src, HW_PATH) == set()

    def test_set_annotated_parameter_is_tracked(self):
        src = """
        def pick(survivors: frozenset[str]):
            return {name: len(name) for name in survivors}
        """
        assert "REP102" in rules_hit(src, CORE_PATH)

    def test_list_conversion_of_set_is_caught(self):
        src = """
        def f(xs):
            s = set(xs)
            return list(s)
        """
        assert "REP102" in rules_hit(src, SERVICE_PATH)

    def test_set_rebuild_and_membership_are_clean(self):
        src = """
        def f(xs, name):
            live = frozenset(xs)
            down = frozenset(n for n in live if bad(n))
            return name in (live - down)
        """
        assert rules_hit(src, CORE_PATH) == set()

    def test_order_insensitive_reductions_are_clean(self):
        src = """
        def f(xs):
            s = set(xs)
            return len(s), sum(s), min(s), max(s), any(x > 0 for x in s)
        """
        assert rules_hit(src, HW_PATH) == set()

    def test_popitem_result_is_tainted(self):
        src = """
        def f(d):
            item = d.popitem()
            for x in item:
                use(x)
            return item
        """
        assert "REP102" in rules_hit(src, HW_PATH)

    def test_reassignment_with_ordered_value_clears_taint(self):
        src = """
        def f(xs):
            s = set(xs)
            s = sorted(s)
            for x in s:
                use(x)
        """
        assert rules_hit(src, HW_PATH) == set()


class TestREP103Resources:
    def test_early_return_leaks_engine(self):
        src = """
        def run_op(dev, op):
            dev.acquire_engine(op.engine)
            if op.rows <= 0:
                return None
            result = execute(dev, op)
            dev.release_engine(op.engine)
            return result
        """
        found = run(src, HW_PATH)
        assert any(v.rule == "REP103" for v in found)

    def test_exception_path_leak_is_caught(self):
        # execute() may raise between acquire and release; REP103 must
        # see the exceptional exit even though the return path is fine.
        src = """
        def run_op(dev, op):
            dev.acquire_engine(op.engine)
            result = execute(dev, op)
            dev.release_engine(op.engine)
            return result
        """
        found = [v for v in run(src, HW_PATH) if v.rule == "REP103"]
        assert found
        assert "exception path" in found[0].message

    def test_try_finally_release_is_clean(self):
        src = """
        def run_op(dev, op):
            dev.acquire_engine(op.engine)
            try:
                return execute(dev, op)
            finally:
                dev.release_engine(op.engine)
        """
        assert rules_hit(src, HW_PATH) == set()

    def test_with_statement_is_exempt(self):
        src = """
        def run_op(dev, op):
            with dev.acquire_engine(op.engine):
                return execute(dev, op)
        """
        assert rules_hit(src, HW_PATH) == set()

    def test_release_of_other_resource_does_not_clear(self):
        src = """
        def f(a, b):
            a.acquire()
            b.release()
            return done()
        """
        found = [v for v in run(src, HW_PATH) if v.rule == "REP103"]
        assert found

    def test_both_paths_release_is_clean(self):
        src = """
        def f(dev, fast):
            dev.reserve()
            try:
                if fast:
                    r = quick(dev)
                else:
                    r = slow(dev)
            finally:
                dev.free()
            return r
        """
        assert rules_hit(src, HW_PATH) == set()


class TestREP103SharedMemory:
    """Constructor-acquired OS resources: ``seg = SharedMemory(...)``.

    The process execution backend creates shared-memory segments; a
    segment never closed/unlinked leaks a /dev/shm file past process
    exit, so REP103 tracks the constructor like an acquire and
    ``close()``/``unlink()`` like releases, with ownership escapes
    (return / re-assignment) transferring responsibility.
    """

    def test_segment_never_released_is_caught(self):
        src = """
        def make(nbytes):
            seg = SharedMemory(create=True, size=nbytes)
            fill(seg.buf)
        """
        found = [v for v in run(src, EXEC_PATH) if v.rule == "REP103"]
        assert found
        assert "'seg'" in found[0].message

    def test_exception_between_create_and_close_is_caught(self):
        # fill() may raise before the releases run.
        src = """
        def make(nbytes):
            seg = SharedMemory(create=True, size=nbytes)
            fill(seg.buf)
            seg.close()
            seg.unlink()
        """
        found = [v for v in run(src, EXEC_PATH) if v.rule == "REP103"]
        assert found
        assert "exception path" in found[0].message

    def test_try_finally_close_unlink_is_clean(self):
        src = """
        def make(nbytes):
            seg = SharedMemory(create=True, size=nbytes)
            try:
                return fill(seg.buf)
            finally:
                seg.close()
                seg.unlink()
        """
        assert rules_hit(src, EXEC_PATH) == set()

    def test_ownership_escape_via_assignment_is_clean(self):
        # The SharedFrameStore pattern: the container now owns the
        # segment; its close() is the audited release site.
        src = """
        def stage(self, spec):
            seg = SharedMemory(create=True, size=spec.nbytes)
            self._segments[spec.key] = seg
        """
        assert rules_hit(src, EXEC_PATH) == set()

    def test_ownership_escape_via_return_is_clean(self):
        src = """
        def open_segment(nbytes):
            seg = SharedMemory(create=True, size=nbytes)
            return seg
        """
        assert rules_hit(src, EXEC_PATH) == set()

    def test_close_of_other_segment_does_not_clear(self):
        src = """
        def swap(other, nbytes):
            seg = SharedMemory(create=True, size=nbytes)
            other.close()
            other.unlink()
        """
        found = [v for v in run(src, EXEC_PATH) if v.rule == "REP103"]
        assert found

    def test_exec_package_is_in_rep103_scope(self):
        assert "REP103" in rules_for_path(EXEC_PATH)
        # ... but wall-clock rules stay out of exec/ (REP001 is the
        # per-line lint; REP101 units scope is hw/core only).
        assert "REP101" not in rules_for_path(EXEC_PATH)


class TestREP104Purity:
    def test_attribute_store_on_parameter_is_caught(self):
        src = """
        def characterize(framework, reports):
            framework.rstar_device = None   # mutates the framework: bug
            return summarize(reports)
        """
        assert "REP104" in rules_hit(src, CALIB_PATH)

    def test_mutator_call_on_device_is_caught(self):
        src = """
        def measure(device, rows):
            device.apply_fault(0.5)
            return device.transfer_s(rows, "h2d")
        """
        assert "REP104" in rules_hit(src, CALIB_PATH)

    def test_building_local_accumulators_is_clean(self):
        src = """
        def summarize(reports):
            acc = {}
            for rep in reports:
                for rec in rep.records:
                    acc.setdefault(rec.resource, []).append(rec.duration)
            out = {}
            for key, values in acc.items():
                out[key] = sum(values) / len(values)
            return out
        """
        assert rules_hit(src, CALIB_PATH) == set()

    def test_rule_only_runs_on_measurement_modules(self):
        src = """
        def mutate(framework):
            framework.state = 1
        """
        assert "REP104" not in rules_hit(src, CORE_PATH)
        assert "REP104" in rules_for_path(CALIB_PATH)
        assert "REP104" in rules_for_path("src/repro/core/analysis.py")


class TestSuppressionAndScoping:
    def test_noqa_suppresses_dataflow_finding(self):
        src = """
        def f(transfer_s, mb_rows):
            return transfer_s + mb_rows  # noqa: REP101
        """
        assert rules_hit(src, HW_PATH) == set()

    def test_blanket_noqa_suppresses(self):
        src = """
        def f(xs):
            s = set(xs)
            return list(s)  # noqa
        """
        assert rules_hit(src, HW_PATH) == set()

    def test_select_forces_rules_out_of_scope(self):
        src = """
        def f(transfer_s, mb_rows):
            return transfer_s + mb_rows
        """
        assert "REP101" in rules_hit(src, OUTSIDE_PATH, select=["REP101"])

    def test_syntax_error_is_silent_here(self):
        # REP000 is the per-line lint's job; dataflow must not crash.
        violations, errors = analyze_source("def f(:\n", HW_PATH)
        assert violations == [] and errors == []

    def test_every_rule_has_a_description(self):
        assert set(DATAFLOW_RULES) == {"REP101", "REP102", "REP103", "REP104"}
        assert all(DATAFLOW_RULES[r] for r in DATAFLOW_RULES)
