"""Property-style end-to-end check: random platforms × fault schedules ×
multi-stream workloads all produce sanitizer-clean timelines.

The sanitizer re-derives every invariant independently of the scheduler,
so any disagreement here is a real bug in one of them — the property is
the tentpole's acceptance gate in miniature.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.codec.config import CodecConfig
from repro.core.config import FrameworkConfig
from repro.core.framework import FevesFramework
from repro.hw.noise import FaultEvent, FaultSchedule
from repro.hw.presets import get_platform
from repro.sanitizers import TimelineSanitizer

PLATFORMS = ("SysNF", "SysNFF", "SysHK", "GPU_F", "CPU_N")
CODECS = (
    CodecConfig(width=704, height=576),
    CodecConfig(width=704, height=576, search_range=32, num_ref_frames=2),
    CodecConfig(width=352, height=288, search_range=8),
)

FAST_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def framework_scenarios(draw):
    platform_name = draw(st.sampled_from(PLATFORMS))
    codec = draw(st.sampled_from(CODECS))
    platform = get_platform(platform_name)
    events = []
    n_faults = draw(st.integers(min_value=0, max_value=2))
    for _ in range(n_faults):
        device = draw(st.sampled_from([d.name for d in platform.devices]))
        kind = draw(st.sampled_from(("dropout", "hang", "degrade", "copy_fail")))
        frame = draw(st.integers(min_value=2, max_value=5))
        if kind == "hang":
            events.append(FaultEvent(
                frame=frame, device=device, kind=kind,
                duration=draw(st.integers(min_value=1, max_value=2)),
            ))
        elif kind == "dropout":
            events.append(FaultEvent(frame=frame, device=device, kind=kind))
        else:
            events.append(FaultEvent(
                frame=frame, device=device, kind=kind,
                factor=draw(st.floats(min_value=1.5, max_value=8.0)),
            ))
        # A second fault on the same device/frame is rejected by the
        # schedule; keep one event per (frame, device).
        seen = {(e.frame, e.device) for e in events[:-1]}
        if (events[-1].frame, events[-1].device) in seen:
            events.pop()
    frames = draw(st.integers(min_value=3, max_value=7))
    return platform_name, codec, FaultSchedule(events=tuple(events)), frames


@FAST_SETTINGS
@given(framework_scenarios())
def test_random_runs_are_sanitizer_clean(scenario):
    platform_name, codec, faults, frames = scenario
    fw = FevesFramework(
        get_platform(platform_name), codec, FrameworkConfig(faults=faults)
    )
    try:
        for _ in range(frames):
            fw.encode_next_inter()
    except RuntimeError:
        # A fault schedule can legitimately kill every device; only
        # completed schedules are sanitized.
        return
    report = TimelineSanitizer.for_framework(fw).check_run(fw)
    assert report.clean, report.summary() + "\n" + "\n".join(
        str(v) for v in report.violations[:10]
    )


@st.composite
def service_scenarios(draw):
    platform_name = draw(st.sampled_from(("SysNF", "SysNFF", "SysHK")))
    platform = get_platform(platform_name)
    n_streams = draw(st.integers(min_value=1, max_value=3))
    streams = []
    for k in range(n_streams):
        streams.append(
            dict(
                stream_id=f"s{k}",
                fps_target=draw(st.sampled_from((12.5, 25.0))),
                n_frames=draw(st.integers(min_value=2, max_value=4)),
                deadline_class=draw(
                    st.sampled_from(("realtime", "standard", "background"))
                ),
                arrival_s=round(draw(st.floats(min_value=0.0, max_value=0.2)), 3),
            )
        )
    events = []
    if draw(st.booleans()) and len(platform.devices) > 1:
        device = draw(st.sampled_from([d.name for d in platform.devices]))
        events.append(FaultEvent(
            frame=draw(st.integers(min_value=2, max_value=4)),
            device=device,
            kind=draw(st.sampled_from(("dropout", "degrade"))),
        ))
    return platform_name, streams, FaultSchedule(events=tuple(events))


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(service_scenarios())
def test_random_multistream_services_are_sanitizer_clean(scenario):
    from repro.service.service import EncodingService, ServiceConfig
    from repro.service.session import StreamSpec

    platform_name, streams, faults = scenario
    service = EncodingService(
        ServiceConfig(platform=platform_name, faults=faults)
    )
    try:
        service.run([StreamSpec(**kw) for kw in streams])
    except RuntimeError:
        return  # all devices faulted away mid-service
    report = TimelineSanitizer.check_service(service)
    assert report.clean, report.summary() + "\n" + "\n".join(
        str(v) for v in report.violations[:10]
    )
