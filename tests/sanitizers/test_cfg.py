"""CFG construction unit tests: branch, loop-else, try/finally edges."""

import ast

from repro.sanitizers.dataflow.cfg import (
    CFG,
    IterElem,
    TestElem,
    build_cfg,
    build_module_cfg,
)


def _cfg(source: str) -> CFG:
    tree = ast.parse(source)
    fn = tree.body[0]
    assert isinstance(fn, ast.FunctionDef)
    return build_cfg(fn)


def _reachable(cfg: CFG, start: int, kinds: frozenset[str] | None = None) -> set[int]:
    seen = {start}
    stack = [start]
    while stack:
        bid = stack.pop()
        for dst, kind in cfg.succs(bid):
            if kinds is not None and kind not in kinds:
                continue
            if dst not in seen:
                seen.add(dst)
                stack.append(dst)
    return seen


def _block_of(cfg: CFG, line: int) -> int:
    """The block holding the statement that starts at ``line``."""
    for bid, blk in cfg.blocks.items():
        for elem in blk.elems:
            node = getattr(elem, "node", elem)
            if getattr(node, "lineno", None) == line:
                return bid
    raise AssertionError(f"no block holds line {line}")


class TestBranches:
    def test_if_join(self):
        cfg = _cfg(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    else:\n"
            "        a = 2\n"
            "    return a\n"
        )
        then_b = _block_of(cfg, 3)
        else_b = _block_of(cfg, 5)
        ret_b = _block_of(cfg, 6)
        # Both arms flow into the same join block.
        assert (ret_b, "normal") in cfg.succs(then_b)
        assert (ret_b, "normal") in cfg.succs(else_b)
        # The return reaches the normal exit, not the raise exit.
        assert (cfg.exit, "normal") in cfg.succs(ret_b)

    def test_if_without_else_falls_through(self):
        cfg = _cfg("def f(x):\n    if x:\n        a = 1\n    return 0\n")
        test_b = _block_of(cfg, 2)
        ret_b = _block_of(cfg, 4)
        assert (ret_b, "false") in cfg.succs(test_b)

    def test_unreachable_code_is_parked_not_lost(self):
        cfg = _cfg("def f():\n    return 1\n    x = 2\n")
        dead = _block_of(cfg, 3)  # still built ...
        assert cfg.preds(dead) == []  # ... but has no predecessors


class TestLoops:
    def test_loop_else_runs_only_on_exhaustion(self):
        cfg = _cfg(
            "def f(xs):\n"
            "    for x in xs:\n"
            "        if x:\n"
            "            break\n"
            "    else:\n"
            "        cleanup()\n"
            "    return 0\n"
        )
        head = _block_of(cfg, 2)
        els = _block_of(cfg, 6)
        ret = _block_of(cfg, 7)
        # else is entered from the loop head via an "else" edge.
        assert (els, "else") in cfg.succs(head)
        # break bypasses the else clause: no path from the break block
        # enters the else block without going back through the head.
        brk = _block_of(cfg, 3)  # the `if x:` test block inside the body
        assert (ret, "normal") in cfg.succs(els)
        reach_from_break = _reachable(
            cfg, brk, kinds=frozenset({"normal", "true", "false"})
        )
        assert els not in reach_from_break

    def test_while_back_edge(self):
        cfg = _cfg("def f(x):\n    while x:\n        x -= 1\n    return x\n")
        head = _block_of(cfg, 2)
        body = _block_of(cfg, 3)
        assert (head, "back") in cfg.succs(body)
        assert any(isinstance(e, TestElem) for e in cfg.blocks[head].elems)

    def test_continue_targets_loop_head(self):
        cfg = _cfg(
            "def f(xs):\n"
            "    for x in xs:\n"
            "        if x:\n"
            "            continue\n"
            "        use(x)\n"
            "    return 0\n"
        )
        head = _block_of(cfg, 2)
        assert any(isinstance(e, IterElem) for e in cfg.blocks[head].elems)
        cont = _block_of(cfg, 3)
        # continue's back edge from the true-arm block reaches the head.
        true_arms = [d for d, k in cfg.succs(cont) if k == "true"]
        assert len(true_arms) == 1
        assert (head, "back") in cfg.succs(true_arms[0])


class TestTryFinally:
    def test_finally_on_normal_and_exceptional_paths(self):
        cfg = _cfg(
            "def f(r):\n"
            "    r.acquire()\n"
            "    try:\n"
            "        work()\n"
            "    finally:\n"
            "        r.release()\n"
            "    return 0\n"
        )
        body = _block_of(cfg, 4)
        fin = _block_of(cfg, 6)
        ret = _block_of(cfg, 7)
        # The try body reaches the finally both normally and via the
        # exception edge of work().
        kinds = {k for d, k in cfg.succs(body) if d == fin}
        assert "finally" in kinds or "normal" in kinds
        assert ("except" in {k for _, k in cfg.succs(body)})
        # After the finally: normal continuation AND the re-raise path.
        succ_fin = cfg.succs(fin)
        assert (ret, "normal") in succ_fin
        assert any(d == cfg.raise_exit for d, _ in succ_fin)

    def test_return_detours_through_finally(self):
        cfg = _cfg(
            "def f():\n"
            "    try:\n"
            "        return 1\n"
            "    finally:\n"
            "        cleanup()\n"
        )
        ret = _block_of(cfg, 3)
        fin = _block_of(cfg, 5)
        # The return edge enters the finally, not the exit directly.
        assert any(d == fin for d, _ in cfg.succs(ret))
        assert all(d != cfg.exit for d, _ in cfg.succs(ret))
        # The finally then reaches the function exit.
        assert cfg.exit in _reachable(cfg, fin)

    def test_handler_catches_then_falls_through(self):
        cfg = _cfg(
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except ValueError:\n"
            "        recover()\n"
            "    return 0\n"
        )
        body = _block_of(cfg, 3)
        handler = _block_of(cfg, 5)
        ret = _block_of(cfg, 6)
        # body --except--> dispatch --except--> handler --> join
        dispatches = [d for d, k in cfg.succs(body) if k == "except"]
        assert any(
            (handler, "except") in cfg.succs(d) for d in dispatches
        )
        assert (ret, "normal") in cfg.succs(handler)
        # An unmatched exception still escapes to the raise exit.
        assert cfg.raise_exit in _reachable(cfg, body)

    def test_nested_finally_chains_outward(self):
        cfg = _cfg(
            "def f():\n"
            "    try:\n"
            "        try:\n"
            "            return 1\n"
            "        finally:\n"
            "            inner()\n"
            "    finally:\n"
            "        outer()\n"
        )
        inner = _block_of(cfg, 6)
        outer = _block_of(cfg, 8)
        # return -> inner finally -> outer finally -> exit
        assert outer in _reachable(cfg, inner)
        assert cfg.exit in _reachable(cfg, outer)


class TestModuleCfg:
    def test_module_body_builds(self):
        tree = ast.parse("x = 1\nfor i in range(3):\n    x += i\n")
        cfg = build_module_cfg(tree)
        assert cfg.exit in _reachable(cfg, cfg.entry)
