"""Reporting helpers."""

import pytest

from repro.report import ascii_bars, ascii_series, format_table


class TestFormatTable:
    def test_alignment_and_content(self):
        out = format_table(["name", "fps"], [["GPU_K", "53.8"], ["CPU_N", "12.0"]])
        lines = out.splitlines()
        assert "name" in lines[0] and "fps" in lines[0]
        assert "GPU_K" in lines[2]
        assert all(len(line) == len(lines[0]) for line in lines[2:])

    def test_title(self):
        out = format_table(["a"], [["1"]], title="T")
        assert out.splitlines()[0] == "T"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["1"]])


class TestAsciiSeries:
    def test_renders_series_and_legend(self):
        out = ascii_series({"x": [1, 2, 3], "y": [3, 2, 1]})
        assert "o=x" in out and "*=y" in out

    def test_hline(self):
        out = ascii_series({"t": [10, 30]}, hline=25, hline_label="real-time")
        assert "---=real-time" in out
        assert "-" in out

    def test_empty(self):
        assert ascii_series({}) == "(no data)"
        assert ascii_series({"x": []}) == "(no data)"

    def test_constant_series_no_crash(self):
        out = ascii_series({"c": [5, 5, 5]})
        assert "o" in out


class TestAsciiBars:
    def test_bars_scale(self):
        out = ascii_bars({"a": 10.0, "b": 5.0}, width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_empty(self):
        assert ascii_bars({}) == "(no data)"
